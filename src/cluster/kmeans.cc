#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace umvsc::cluster {

namespace {

double SquaredDistance(const la::Matrix& data, std::size_t row,
                       const la::Matrix& centroids, std::size_t c) {
  const double* x = data.RowPtr(row);
  const double* m = centroids.RowPtr(c);
  double s = 0.0;
  for (std::size_t j = 0; j < data.cols(); ++j) {
    const double diff = x[j] - m[j];
    s += diff * diff;
  }
  return s;
}

// k-means++ seeding: first centroid uniform, then proportional to the
// squared distance to the nearest chosen centroid.
la::Matrix SeedPlusPlus(const la::Matrix& data, std::size_t k, Rng& rng) {
  const std::size_t n = data.rows(), d = data.cols();
  la::Matrix centroids(k, d);
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());

  std::size_t first = static_cast<std::size_t>(rng.UniformInt(n));
  centroids.SetRow(0, data.Row(first));
  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      min_d2[i] = std::min(min_d2[i], SquaredDistance(data, i, centroids, c - 1));
      total += min_d2[i];
    }
    std::size_t chosen;
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids.
      chosen = static_cast<std::size_t>(rng.UniformInt(n));
    } else {
      double r = rng.Uniform() * total;
      chosen = n - 1;
      for (std::size_t i = 0; i < n; ++i) {
        r -= min_d2[i];
        if (r < 0.0) {
          chosen = i;
          break;
        }
      }
    }
    centroids.SetRow(c, data.Row(chosen));
  }
  return centroids;
}

struct LloydOutcome {
  std::vector<std::size_t> labels;
  la::Matrix centroids;
  double inertia;
  std::size_t iterations;
};

LloydOutcome RunLloyd(const la::Matrix& data, la::Matrix centroids,
                      const KMeansOptions& options) {
  const std::size_t n = data.rows(), d = data.cols();
  const std::size_t k = options.num_clusters;
  std::vector<std::size_t> labels(n, 0);
  std::vector<std::size_t> counts(k, 0);
  double prev_inertia = std::numeric_limits<double>::infinity();
  double inertia = prev_inertia;
  std::size_t iter = 0;

  for (; iter < options.max_iterations; ++iter) {
    // Assignment step.
    inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d2 = SquaredDistance(data, i, centroids, c);
        if (d2 < best) {
          best = d2;
          best_c = c;
        }
      }
      labels[i] = best_c;
      inertia += best;
    }

    // Update step.
    centroids.Fill(0.0);
    std::fill(counts.begin(), counts.end(), std::size_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      double* m = centroids.RowPtr(labels[i]);
      const double* x = data.RowPtr(i);
      for (std::size_t j = 0; j < d; ++j) m[j] += x[j];
      counts[labels[i]]++;
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      double* m = centroids.RowPtr(c);
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t j = 0; j < d; ++j) m[j] *= inv;
    }

    // Empty-cluster repair: re-seed each empty cluster at the point with the
    // largest distance to its current centroid (stealing it from a big
    // cluster). Deterministic given the assignment.
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] != 0) continue;
      double worst = -1.0;
      std::size_t worst_i = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (counts[labels[i]] <= 1) continue;  // don't empty another cluster
        const double d2 = SquaredDistance(data, i, centroids, labels[i]);
        if (d2 > worst) {
          worst = d2;
          worst_i = i;
        }
      }
      counts[labels[worst_i]]--;
      labels[worst_i] = c;
      counts[c] = 1;
      centroids.SetRow(c, data.Row(worst_i));
    }

    // Note: the iter > 0 guard matters — prev_inertia starts at +inf and
    // inf <= inf would otherwise stop the loop after a single sweep.
    if (iter > 0 && prev_inertia - inertia <=
                        options.tolerance * std::max(prev_inertia, 1e-300)) {
      ++iter;
      break;
    }
    prev_inertia = inertia;
  }
  // The loop's inertia was measured against the pre-update centroids; report
  // the objective of the returned (labels, centroids) pair instead so that
  // result.inertia is exactly Σᵢ‖xᵢ − μ_{labels[i]}‖².
  inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    inertia += SquaredDistance(data, i, centroids, labels[i]);
  }
  return {std::move(labels), std::move(centroids), inertia, iter};
}

}  // namespace

StatusOr<KMeansResult> KMeans(const la::Matrix& data,
                              const KMeansOptions& options) {
  const std::size_t n = data.rows();
  const std::size_t k = options.num_clusters;
  if (n == 0 || data.cols() == 0) {
    return Status::InvalidArgument("KMeans requires a non-empty data matrix");
  }
  if (k < 1 || k > n) {
    return Status::InvalidArgument("KMeans requires 1 <= k <= n");
  }
  if (options.restarts < 1) {
    return Status::InvalidArgument("KMeans requires at least one restart");
  }

  Rng root(options.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    Rng rng = root.Split();
    LloydOutcome run = RunLloyd(data, SeedPlusPlus(data, k, rng), options);
    if (run.inertia < best.inertia) {
      best.labels = std::move(run.labels);
      best.centroids = std::move(run.centroids);
      best.inertia = run.inertia;
      best.iterations = run.iterations;
    }
  }
  return best;
}

}  // namespace umvsc::cluster
