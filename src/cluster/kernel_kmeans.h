#ifndef UMVSC_CLUSTER_KERNEL_KMEANS_H_
#define UMVSC_CLUSTER_KERNEL_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace umvsc::cluster {

/// Options for kernel K-means.
struct KernelKMeansOptions {
  std::size_t num_clusters = 2;
  std::size_t max_iterations = 100;
  /// Independent random-assignment restarts; best objective wins.
  std::size_t restarts = 10;
  std::uint64_t seed = 0;
};

/// Result of a kernel K-means run.
struct KernelKMeansResult {
  std::vector<std::size_t> labels;
  /// Final kernel K-means objective Σᵢ ‖φ(xᵢ) − μ_{cᵢ}‖²_H (implicit
  /// feature space), computable purely from the Gram matrix.
  double objective = 0.0;
  std::size_t iterations = 0;
};

/// Kernel K-means on a symmetric PSD Gram matrix K: Lloyd's algorithm in
/// the implicit feature space, where the point-to-centroid distance is
///   ‖φ(xᵢ) − μ_c‖² = K_ii − 2/|c|·Σ_{j∈c} K_ij + 1/|c|²·Σ_{j,l∈c} K_jl.
/// Monotone per restart; empty clusters are re-seeded with the point
/// farthest from its own centroid. Requires 1 <= k <= n.
StatusOr<KernelKMeansResult> KernelKMeans(const la::Matrix& gram,
                                          const KernelKMeansOptions& options);

}  // namespace umvsc::cluster

#endif  // UMVSC_CLUSTER_KERNEL_KMEANS_H_
