#ifndef UMVSC_GRAPH_CONNECTIVITY_H_
#define UMVSC_GRAPH_CONNECTIVITY_H_

#include <cstddef>
#include <vector>

#include "la/sparse.h"

namespace umvsc::graph {

/// Connected components of an undirected graph given by a symmetric CSR
/// affinity (edges are nonzero entries). Returns a component id in
/// [0, NumComponents) per vertex, ids assigned in order of first visit.
std::vector<std::size_t> ConnectedComponents(const la::CsrMatrix& w);

/// Number of connected components.
std::size_t CountComponents(const la::CsrMatrix& w);

/// True when the graph is a single connected component. Spectral clustering
/// with the normalized Laplacian silently degrades on disconnected graphs —
/// callers use this as a diagnostic before embedding.
bool IsConnected(const la::CsrMatrix& w);

}  // namespace umvsc::graph

#endif  // UMVSC_GRAPH_CONNECTIVITY_H_
