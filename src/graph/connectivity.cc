#include "graph/connectivity.h"

#include <queue>

#include "common/check.h"

namespace umvsc::graph {

std::vector<std::size_t> ConnectedComponents(const la::CsrMatrix& w) {
  UMVSC_CHECK(w.rows() == w.cols(), "connectivity requires a square graph");
  const std::size_t n = w.rows();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> component(n, kUnvisited);
  const auto& offsets = w.row_offsets();
  const auto& cols = w.col_indices();
  const auto& vals = w.values();

  std::size_t next_id = 0;
  std::queue<std::size_t> frontier;
  for (std::size_t start = 0; start < n; ++start) {
    if (component[start] != kUnvisited) continue;
    component[start] = next_id;
    frontier.push(start);
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      for (std::size_t k = offsets[u]; k < offsets[u + 1]; ++k) {
        if (vals[k] == 0.0) continue;
        const std::size_t v = cols[k];
        if (component[v] == kUnvisited) {
          component[v] = next_id;
          frontier.push(v);
        }
      }
    }
    ++next_id;
  }
  return component;
}

std::size_t CountComponents(const la::CsrMatrix& w) {
  const std::vector<std::size_t> comp = ConnectedComponents(w);
  std::size_t max_id = 0;
  for (std::size_t c : comp) max_id = std::max(max_id, c);
  return comp.empty() ? 0 : max_id + 1;
}

bool IsConnected(const la::CsrMatrix& w) { return CountComponents(w) <= 1; }

}  // namespace umvsc::graph
