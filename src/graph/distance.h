#ifndef UMVSC_GRAPH_DISTANCE_H_
#define UMVSC_GRAPH_DISTANCE_H_

#include <cstddef>

#include "la/matrix.h"
#include "la/vector.h"

namespace umvsc::graph {

/// Pairwise squared Euclidean distances between the rows of `x`:
/// D²_ij = ‖x_i − x_j‖². Computed via the Gram expansion
/// ‖x_i‖² + ‖x_j‖² − 2·x_iᵀx_j with clamping at zero, so it is O(n²·d)
/// with a single GEMM-shaped pass. The diagonal is exactly zero.
/// Row-parallel on the global thread pool (common/parallel.h) with
/// write-disjoint spans: the output is bitwise identical at every
/// UMVSC_NUM_THREADS setting. Safe to call concurrently.
la::Matrix PairwiseSquaredDistances(const la::Matrix& x);

/// Pairwise Euclidean distances (element-wise sqrt of the above).
/// Parallel and bitwise deterministic across thread counts.
la::Matrix PairwiseDistances(const la::Matrix& x);

/// Pairwise cosine similarity between rows, in [−1, 1]. Zero rows get
/// similarity 0 against everything (including themselves). Row-parallel
/// and bitwise deterministic across thread counts.
la::Matrix CosineSimilarity(const la::Matrix& x);

/// Squared Euclidean norms of the rows of `x`: ‖x_i‖², accumulated in
/// ascending-feature order — bitwise identical to the diagonal of
/// `la::OuterGram(x)`. The O(n)-memory ingredient of the tiled distance
/// panels below.
la::Vector RowSquaredNorms(const la::Matrix& x);

/// Fills a row-tile panel of pairwise squared distances:
///   panel(i − r0, j) = max(0, ‖x_i‖² + ‖x_j‖² − 2·x_i·x_j)
/// for i in [r0, r1), j in [0, n). `sq_norms` must be RowSquaredNorms(x) and
/// `panel` must provide (r1 − r0) × n entries. Entries are bitwise identical
/// to the corresponding entries of PairwiseSquaredDistances(x) — same Gram
/// expansion, same ascending dot-product order, same clamp — so tiled
/// consumers reproduce the dense path exactly without ever holding an n × n
/// matrix. Serial by design: it is the inner kernel of tile-parallel loops.
void SquaredDistancePanel(const la::Matrix& x, const la::Vector& sq_norms,
                          std::size_t r0, std::size_t r1, double* panel);

/// Bipartite sibling of SquaredDistancePanel: fills a row-tile panel of
/// squared distances from rows of `x` to ALL rows of `y`
///   panel(i − r0, j) = max(0, ‖x_i‖² + ‖y_j‖² − 2·x_i·y_j)
/// for i in [r0, r1), j in [0, y.rows()). `x_sq_norms` / `y_sq_norms` must
/// be RowSquaredNorms of the respective matrices and `panel` must provide
/// (r1 − r0) × y.rows() entries. No self-skip — the row and column sets are
/// different objects. Same Gram expansion, ascending dot order, and clamp as
/// SquaredDistancePanel, so the entries are a pure function of the two rows:
/// tiled consumers are bitwise identical at every tile size and thread
/// count. Serial by design: the inner kernel of tile-parallel loops.
void CrossSquaredDistancePanel(const la::Matrix& x,
                               const la::Vector& x_sq_norms,
                               const la::Matrix& y,
                               const la::Vector& y_sq_norms, std::size_t r0,
                               std::size_t r1, double* panel);

}  // namespace umvsc::graph

#endif  // UMVSC_GRAPH_DISTANCE_H_
