#ifndef UMVSC_GRAPH_DISTANCE_H_
#define UMVSC_GRAPH_DISTANCE_H_

#include "la/matrix.h"

namespace umvsc::graph {

/// Pairwise squared Euclidean distances between the rows of `x`:
/// D²_ij = ‖x_i − x_j‖². Computed via the Gram expansion
/// ‖x_i‖² + ‖x_j‖² − 2·x_iᵀx_j with clamping at zero, so it is O(n²·d)
/// with a single GEMM-shaped pass. The diagonal is exactly zero.
/// Row-parallel on the global thread pool (common/parallel.h) with
/// write-disjoint spans: the output is bitwise identical at every
/// UMVSC_NUM_THREADS setting. Safe to call concurrently.
la::Matrix PairwiseSquaredDistances(const la::Matrix& x);

/// Pairwise Euclidean distances (element-wise sqrt of the above).
/// Parallel and bitwise deterministic across thread counts.
la::Matrix PairwiseDistances(const la::Matrix& x);

/// Pairwise cosine similarity between rows, in [−1, 1]. Zero rows get
/// similarity 0 against everything (including themselves). Row-parallel
/// and bitwise deterministic across thread counts.
la::Matrix CosineSimilarity(const la::Matrix& x);

}  // namespace umvsc::graph

#endif  // UMVSC_GRAPH_DISTANCE_H_
