#ifndef UMVSC_GRAPH_TILED_SELECT_H_
#define UMVSC_GRAPH_TILED_SELECT_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace umvsc::graph::internal {

/// Internal machinery of the tiled O(n·k) graph construction: a reusable
/// bounded top-k selector and the tile-parallel panel → selection driver.
/// Public entry points live in knn_graph.h / kernels.h; nothing outside
/// graph/ should include this header.

/// Bounded best-k selector with a reusable workspace: keeps the k best
/// (value, index) pairs seen so far in rank order (best first), with the
/// deterministic tie rule "equal values prefer the smaller index". One
/// instance per thread, Reset() per row — no per-row allocation (the
/// backing arrays are sized k once and reused).
class BoundedTopK {
 public:
  /// `largest` selects by descending value (affinity top-k); otherwise by
  /// ascending value (nearest-distance selection).
  BoundedTopK(std::size_t k, bool largest) : k_(k), largest_(largest) {
    vals_.reserve(k);
    idxs_.reserve(k);
  }

  void Reset() {
    vals_.clear();
    idxs_.clear();
  }

  /// Considers candidate (v, j); keeps it iff it ranks among the k best.
  void Offer(double v, std::size_t j) {
    const std::size_t m = vals_.size();
    if (m == k_ && !Better(v, j, vals_[m - 1], idxs_[m - 1])) return;
    // Binary search the insertion slot in the best → worst run.
    std::size_t lo = 0, hi = m;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (Better(v, j, vals_[mid], idxs_[mid])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (m == k_) {
      vals_.pop_back();
      idxs_.pop_back();
    }
    vals_.insert(vals_.begin() + lo, v);
    idxs_.insert(idxs_.begin() + lo, j);
  }

  std::size_t size() const { return vals_.size(); }
  /// Rank r (0 = best) accessors.
  double value(std::size_t r) const { return vals_[r]; }
  std::size_t index(std::size_t r) const { return idxs_[r]; }

 private:
  bool Better(double v, std::size_t j, double v2, std::size_t j2) const {
    if (v != v2) return largest_ ? v > v2 : v < v2;
    return j < j2;
  }

  std::size_t k_;
  bool largest_;
  std::vector<double> vals_;
  std::vector<std::size_t> idxs_;
};

/// Fills `panel` — a row-major (r1 − r0) × n block — with the selection
/// scores of rows [r0, r1). The filler is invoked from inside a parallel
/// region and must be pure with respect to its output block.
using PanelFiller =
    std::function<void(std::size_t r0, std::size_t r1, double* panel)>;

/// Result of a directed per-row selection: row i holds count[i] entries at
/// [i·k, i·k + count[i]) of `cols`/`vals`, in RANK order (best first).
struct DirectedSelection {
  std::size_t n = 0;
  std::size_t k = 0;  // slots per row (selection size)
  std::vector<std::size_t> cols;
  std::vector<double> vals;
  std::vector<std::size_t> counts;
};

/// The tiled selection core: cuts [0, n) into ⌈n / tile_rows⌉ row tiles,
/// fills each tile's score panel via `fill`, and runs the bounded selector
/// over every row (self-scores j == i are skipped). Peak memory is one
/// tile_rows × n panel per participating thread plus the O(n·k) output —
/// never an n × n buffer.
///
/// Determinism: the tile grid depends only on (n, tile_rows) — never the
/// thread count — threads own contiguous tile runs, and each row's
/// selection is a pure function of its panel row, so the output is bitwise
/// identical at every thread count AND every tile size.
///
/// If `negative_seen` is non-null, every panel entry (including j == i) is
/// additionally checked for negativity and *negative_seen reports whether
/// any was found — this folds input validation into the selection pass
/// instead of a separate O(n²) serial prescan.
DirectedSelection TiledSelect(std::size_t n, std::size_t k, bool largest,
                              std::size_t tile_rows, const PanelFiller& fill,
                              bool* negative_seen);

/// Rectangular variant for bipartite selections (rows scored against a
/// DIFFERENT column set, e.g. points vs anchors): cuts [0, n_rows) into row
/// tiles, fills (r1 − r0) × n_cols panels via `fill`, and keeps the k best
/// columns per row. No self-skip — row i and column i are unrelated objects —
/// so every row's count is exactly k. Peak memory is one tile_rows × n_cols
/// panel per participating thread plus the O(n_rows·k) output. Same
/// determinism contract as TiledSelect: bitwise identical output at every
/// thread count and every tile size. Requires 1 <= k <= n_cols.
DirectedSelection TiledSelectRect(std::size_t n_rows, std::size_t n_cols,
                                  std::size_t k, bool largest,
                                  std::size_t tile_rows,
                                  const PanelFiller& fill);

}  // namespace umvsc::graph::internal

#endif  // UMVSC_GRAPH_TILED_SELECT_H_
