#include "graph/distance.h"

#include <algorithm>
#include <cmath>

#include "la/ops.h"

namespace umvsc::graph {

la::Matrix PairwiseSquaredDistances(const la::Matrix& x) {
  const std::size_t n = x.rows();
  la::Matrix gram = la::OuterGram(x);
  la::Matrix d2(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double gii = gram(i, i);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = std::max(0.0, gii + gram(j, j) - 2.0 * gram(i, j));
      d2(i, j) = v;
      d2(j, i) = v;
    }
  }
  return d2;
}

la::Matrix PairwiseDistances(const la::Matrix& x) {
  la::Matrix d = PairwiseSquaredDistances(x);
  for (std::size_t i = 0; i < d.size(); ++i) {
    d.data()[i] = std::sqrt(d.data()[i]);
  }
  return d;
}

la::Matrix CosineSimilarity(const la::Matrix& x) {
  const std::size_t n = x.rows();
  la::Matrix gram = la::OuterGram(x);
  la::Vector norms(n);
  for (std::size_t i = 0; i < n; ++i) norms[i] = std::sqrt(gram(i, i));
  la::Matrix s(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double denom = norms[i] * norms[j];
      s(i, j) = denom > 0.0 ? gram(i, j) / denom : 0.0;
    }
  }
  return s;
}

}  // namespace umvsc::graph
