#include "graph/distance.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "la/ops.h"

namespace umvsc::graph {

namespace {
// Row grain of the distance kernels: fine enough to spread paper-sized
// problems across every core, coarse enough to amortize dispatch.
constexpr std::size_t kRowGrain = 16;
}  // namespace

la::Matrix PairwiseSquaredDistances(const la::Matrix& x) {
  const std::size_t n = x.rows();
  la::Matrix gram = la::OuterGram(x);  // itself row-parallel
  la::Matrix d2(n, n);
  // Expansion pass: iteration i writes d2(i, j>i) and the mirror d2(j>i, i)
  // — every element exactly once, so row spans are write-disjoint and the
  // result is bitwise identical at every thread count.
  ParallelFor(0, n, kRowGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const double gii = gram(i, i);
      for (std::size_t j = i + 1; j < n; ++j) {
        const double v = std::max(0.0, gii + gram(j, j) - 2.0 * gram(i, j));
        d2(i, j) = v;
        d2(j, i) = v;
      }
    }
  });
  return d2;
}

la::Matrix PairwiseDistances(const la::Matrix& x) {
  la::Matrix d = PairwiseSquaredDistances(x);
  double* data = d.data();
  ParallelFor(0, d.size(), 4096, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) data[i] = std::sqrt(data[i]);
  });
  return d;
}

la::Vector RowSquaredNorms(const la::Matrix& x) {
  const std::size_t n = x.rows();
  la::Vector norms(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* ri = x.RowPtr(i);
    double s = 0.0;
    for (std::size_t p = 0; p < x.cols(); ++p) s += ri[p] * ri[p];
    norms[i] = s;
  }
  return norms;
}

void SquaredDistancePanel(const la::Matrix& x, const la::Vector& sq_norms,
                          std::size_t r0, std::size_t r1, double* panel) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  for (std::size_t i = r0; i < r1; ++i) {
    const double* ri = x.RowPtr(i);
    const double ni = sq_norms[i];
    double* prow = panel + (i - r0) * n;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) {
        prow[j] = 0.0;  // exact zero, as the dense path guarantees
        continue;
      }
      const double* rj = x.RowPtr(j);
      double s = 0.0;
      for (std::size_t p = 0; p < d; ++p) s += ri[p] * rj[p];
      prow[j] = std::max(0.0, ni + sq_norms[j] - 2.0 * s);
    }
  }
}

void CrossSquaredDistancePanel(const la::Matrix& x,
                               const la::Vector& x_sq_norms,
                               const la::Matrix& y,
                               const la::Vector& y_sq_norms, std::size_t r0,
                               std::size_t r1, double* panel) {
  const std::size_t m = y.rows();
  const std::size_t d = x.cols();
  for (std::size_t i = r0; i < r1; ++i) {
    const double* ri = x.RowPtr(i);
    const double ni = x_sq_norms[i];
    double* prow = panel + (i - r0) * m;
    for (std::size_t j = 0; j < m; ++j) {
      const double* rj = y.RowPtr(j);
      double s = 0.0;
      for (std::size_t p = 0; p < d; ++p) s += ri[p] * rj[p];
      prow[j] = std::max(0.0, ni + y_sq_norms[j] - 2.0 * s);
    }
  }
}

la::Matrix CosineSimilarity(const la::Matrix& x) {
  const std::size_t n = x.rows();
  la::Matrix gram = la::OuterGram(x);
  la::Vector norms(n);
  for (std::size_t i = 0; i < n; ++i) norms[i] = std::sqrt(gram(i, i));
  la::Matrix s(n, n);
  ParallelFor(0, n, kRowGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const double denom = norms[i] * norms[j];
        s(i, j) = denom > 0.0 ? gram(i, j) / denom : 0.0;
      }
    }
  });
  return s;
}

}  // namespace umvsc::graph
