#ifndef UMVSC_GRAPH_KNN_GRAPH_H_
#define UMVSC_GRAPH_KNN_GRAPH_H_

#include <cstddef>

#include "common/status.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace umvsc::graph {

/// How a directed kNN selection is turned into an undirected graph.
enum class KnnSymmetrization {
  kUnion,    ///< keep an edge if either endpoint selected it (max weight)
  kMutual,   ///< keep an edge only if both endpoints selected it (min weight)
  kAverage,  ///< (W + Wᵀ)/2 on the union of selections
};

/// Sparsifies a dense affinity matrix to the k strongest neighbors per node
/// and symmetrizes. Diagonal entries are ignored (no self-loops). Requires
/// a square nonnegative affinity and 1 <= k < n. Neighbor selection and
/// symmetrization run row-parallel on the global thread pool; the emitted
/// triplet stream is ordered by row, so the graph is bitwise identical at
/// every thread count.
StatusOr<la::CsrMatrix> BuildKnnGraph(
    const la::Matrix& affinity, std::size_t k,
    KnnSymmetrization symmetrization = KnnSymmetrization::kUnion);

/// Adaptive-neighbor graph (the probabilistic-neighbors closed form of
/// Nie et al., CAN): row i gets weights over its k nearest neighbors
/// proportional to (d_{i,k+1} − d_{i,j}), which solves
/// min_w Σ_j d_ij·w_ij + γ‖w_i‖² on the probability simplex with the γ that
/// makes exactly k weights nonzero. Rows sum to 1; output is symmetrized
/// with (W + Wᵀ)/2. Input: squared distances; requires 1 <= k < n − 1.
/// Row-parallel with row-ordered triplet emission — bitwise deterministic
/// across thread counts.
StatusOr<la::CsrMatrix> AdaptiveNeighborGraph(const la::Matrix& sq_dists,
                                              std::size_t k);

}  // namespace umvsc::graph

#endif  // UMVSC_GRAPH_KNN_GRAPH_H_
