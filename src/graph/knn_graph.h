#ifndef UMVSC_GRAPH_KNN_GRAPH_H_
#define UMVSC_GRAPH_KNN_GRAPH_H_

#include <cstddef>

#include "common/status.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace umvsc::graph {

/// How a directed kNN selection is turned into an undirected graph.
enum class KnnSymmetrization {
  kUnion,    ///< keep an edge if either endpoint selected it (max weight)
  kMutual,   ///< keep an edge only if both endpoints selected it (min weight)
  kAverage,  ///< (W + Wᵀ)/2 on the union of selections
};

/// Tiling of the O(n·k)-memory graph construction core. The row range is
/// cut into ⌈n / tile_rows⌉ fixed tiles; each participating thread owns a
/// contiguous run of whole tiles and reuses ONE tile_rows × n score panel
/// plus one bounded top-k workspace across its run. The tile grid depends
/// only on (n, tile_rows) — never the thread count — so the emitted graph
/// is bitwise identical at every thread count AND every tile size.
struct TiledGraphOptions {
  /// Rows per score panel. Peak panel memory per thread is
  /// tile_rows × n × 8 bytes; 128 keeps that ≈ 20 MB even at n = 20000.
  std::size_t tile_rows = 128;
};

/// Sparsifies a dense affinity matrix to the k strongest neighbors per node
/// and symmetrizes. Diagonal entries are ignored (no self-loops). Requires
/// a square nonnegative affinity and 1 <= k < n. A thin wrapper over the
/// tiled selection core (the panels read rows of `affinity` directly), so
/// it emits exactly the same graph as BuildKnnGraphFromFeatures does from
/// raw features. Ties in affinity resolve to the smaller column index.
/// Bitwise deterministic across thread counts and tile sizes.
StatusOr<la::CsrMatrix> BuildKnnGraph(
    const la::Matrix& affinity, std::size_t k,
    KnnSymmetrization symmetrization = KnnSymmetrization::kUnion,
    const TiledGraphOptions& tiling = {});

/// The fused O(n·k)-memory construction: self-tuning kernel + kNN
/// sparsification straight from the n × d feature matrix, without ever
/// materializing an n × n distance, kernel, or selection-mask matrix.
/// Squared distances are evaluated in tile_rows × n panels via the Gram
/// expansion (bitwise identical to graph::PairwiseSquaredDistances), the
/// self-tuning scales σ_i come from a first tiled pass
/// (graph::SelfTuningScales), and each panel row feeds the bounded top-k
/// selector directly. Produces byte-for-byte the same CSR graph as
///   BuildKnnGraph(SelfTuningKernel(PairwiseSquaredDistances(x), k), k, s)
/// at O(n·k + tile_rows·n) peak memory instead of O(n²).
/// Requires n >= 2 and 1 <= k < n.
StatusOr<la::CsrMatrix> BuildKnnGraphFromFeatures(
    const la::Matrix& x, std::size_t k,
    KnnSymmetrization symmetrization = KnnSymmetrization::kUnion,
    const TiledGraphOptions& tiling = {});

/// Adaptive-neighbor graph (the probabilistic-neighbors closed form of
/// Nie et al., CAN): row i gets weights over its k nearest neighbors
/// proportional to (d_{i,k+1} − d_{i,j}), which solves
/// min_w Σ_j d_ij·w_ij + γ‖w_i‖² on the probability simplex with the γ that
/// makes exactly k weights nonzero. Rows sum to 1; output is symmetrized
/// with (W + Wᵀ)/2. Input: squared distances; requires 1 <= k < n − 1.
/// Wrapper over the tiled core (ties resolve to the smaller index);
/// bitwise deterministic across thread counts and tile sizes.
StatusOr<la::CsrMatrix> AdaptiveNeighborGraph(const la::Matrix& sq_dists,
                                              std::size_t k,
                                              const TiledGraphOptions& tiling = {});

/// Adaptive-neighbor graph straight from the n × d feature matrix in
/// O(n·k) memory: squared-distance panels feed the bounded (k+1)-nearest
/// selection directly — no dense distance matrix. Byte-identical to
/// AdaptiveNeighborGraph(PairwiseSquaredDistances(x), k).
/// Requires 1 <= k < n − 1.
StatusOr<la::CsrMatrix> AdaptiveNeighborGraphFromFeatures(
    const la::Matrix& x, std::size_t k, const TiledGraphOptions& tiling = {});

}  // namespace umvsc::graph

#endif  // UMVSC_GRAPH_KNN_GRAPH_H_
