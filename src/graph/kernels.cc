#include "graph/kernels.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/distance.h"
#include "graph/tiled_select.h"

namespace umvsc::graph {

StatusOr<la::Matrix> GaussianKernel(const la::Matrix& sq_dists, double sigma) {
  if (!sq_dists.IsSquare()) {
    return Status::InvalidArgument("GaussianKernel requires a square matrix");
  }
  if (sigma <= 0.0) {
    return Status::InvalidArgument("Gaussian bandwidth must be positive");
  }
  const std::size_t n = sq_dists.rows();
  const double inv = 1.0 / (2.0 * sigma * sigma);
  la::Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      w(i, j) = i == j ? 0.0 : std::exp(-sq_dists(i, j) * inv);
    }
  }
  return w;
}

StatusOr<la::Matrix> SelfTuningKernel(const la::Matrix& sq_dists,
                                      std::size_t k) {
  if (!sq_dists.IsSquare()) {
    return Status::InvalidArgument("SelfTuningKernel requires a square matrix");
  }
  const std::size_t n = sq_dists.rows();
  if (k < 1 || k >= n) {
    return Status::InvalidArgument("SelfTuningKernel requires 1 <= k < n");
  }
  // σ_i = distance from i to its k-th nearest *other* point.
  la::Vector scale(n);
  std::vector<double> row(n);
  for (std::size_t i = 0; i < n; ++i) {
    row.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) row.push_back(sq_dists(i, j));
    }
    std::nth_element(row.begin(), row.begin() + (k - 1), row.end());
    scale[i] = std::sqrt(std::max(row[k - 1], 1e-300));
  }
  la::Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      w(i, j) = std::exp(-sq_dists(i, j) / (scale[i] * scale[j]));
    }
  }
  return w;
}

StatusOr<la::Vector> SelfTuningScales(const la::Matrix& x, std::size_t k,
                                      std::size_t tile_rows) {
  const std::size_t n = x.rows();
  if (k < 1 || k >= n) {
    return Status::InvalidArgument("SelfTuningScales requires 1 <= k < n");
  }
  const la::Vector sq_norms = RowSquaredNorms(x);
  // k smallest squared distances per row; the worst accepted value (rank
  // k − 1) is exactly the k-th order statistic the dense SelfTuningKernel
  // extracts with nth_element — same value, O(n·k) memory.
  internal::DirectedSelection nearest = internal::TiledSelect(
      n, k, /*largest=*/false, tile_rows,
      [&](std::size_t r0, std::size_t r1, double* panel) {
        SquaredDistancePanel(x, sq_norms, r0, r1, panel);
      },
      /*negative_seen=*/nullptr);
  la::Vector scale(n);
  for (std::size_t i = 0; i < n; ++i) {
    scale[i] = std::sqrt(std::max(nearest.vals[i * k + (k - 1)], 1e-300));
  }
  return scale;
}

StatusOr<double> MedianHeuristicSigma(const la::Matrix& sq_dists) {
  if (!sq_dists.IsSquare()) {
    return Status::InvalidArgument("MedianHeuristicSigma requires square input");
  }
  std::vector<double> dists;
  const std::size_t n = sq_dists.rows();
  dists.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (sq_dists(i, j) > 0.0) dists.push_back(std::sqrt(sq_dists(i, j)));
    }
  }
  if (dists.empty()) {
    return Status::InvalidArgument("all pairwise distances are zero");
  }
  const std::size_t mid = dists.size() / 2;
  std::nth_element(dists.begin(), dists.begin() + mid, dists.end());
  return dists[mid];
}

}  // namespace umvsc::graph
