#include "graph/laplacian.h"

#include <cmath>

namespace umvsc::graph {

namespace {

Status ValidateAffinity(const la::Matrix& w, double symmetry_tol) {
  if (!w.IsSquare()) {
    return Status::InvalidArgument("affinity must be square");
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (w.data()[i] < 0.0) {
      return Status::InvalidArgument("affinity must be nonnegative");
    }
  }
  if (!w.IsSymmetric(symmetry_tol * std::max(1.0, w.MaxAbs()))) {
    return Status::InvalidArgument("affinity must be symmetric");
  }
  return Status::OK();
}

Status ValidateAffinity(const la::CsrMatrix& w, double symmetry_tol) {
  if (w.rows() != w.cols()) {
    return Status::InvalidArgument("affinity must be square");
  }
  for (double v : w.values()) {
    if (v < 0.0) return Status::InvalidArgument("affinity must be nonnegative");
  }
  if (!w.IsSymmetric(symmetry_tol)) {
    return Status::InvalidArgument("affinity must be symmetric");
  }
  return Status::OK();
}

}  // namespace

la::Vector Degrees(const la::Matrix& w) {
  la::Vector d(w.rows());
  for (std::size_t i = 0; i < w.rows(); ++i) {
    double s = 0.0;
    const double* row = w.RowPtr(i);
    for (std::size_t j = 0; j < w.cols(); ++j) s += row[j];
    d[i] = s;
  }
  return d;
}

la::Vector Degrees(const la::CsrMatrix& w) { return w.RowSums(); }

StatusOr<la::Matrix> Laplacian(const la::Matrix& w, LaplacianKind kind,
                               double symmetry_tol) {
  UMVSC_RETURN_IF_ERROR(ValidateAffinity(w, symmetry_tol));
  const std::size_t n = w.rows();
  la::Vector deg = Degrees(w);
  la::Matrix l(n, n);
  switch (kind) {
    case LaplacianKind::kUnnormalized:
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) l(i, j) = -w(i, j);
        l(i, i) += deg[i];
      }
      break;
    case LaplacianKind::kSymmetric: {
      la::Vector inv_sqrt(n);
      for (std::size_t i = 0; i < n; ++i) {
        inv_sqrt[i] = deg[i] > 0.0 ? 1.0 / std::sqrt(deg[i]) : 0.0;
      }
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          l(i, j) = -inv_sqrt[i] * w(i, j) * inv_sqrt[j];
        }
        l(i, i) += 1.0;
      }
      break;
    }
    case LaplacianKind::kRandomWalk: {
      for (std::size_t i = 0; i < n; ++i) {
        const double inv = deg[i] > 0.0 ? 1.0 / deg[i] : 0.0;
        for (std::size_t j = 0; j < n; ++j) l(i, j) = -inv * w(i, j);
        l(i, i) += 1.0;
      }
      break;
    }
  }
  return l;
}

StatusOr<la::CsrMatrix> Laplacian(const la::CsrMatrix& w, LaplacianKind kind,
                                  double symmetry_tol) {
  UMVSC_RETURN_IF_ERROR(ValidateAffinity(w, symmetry_tol));
  const std::size_t n = w.rows();
  la::Vector deg = Degrees(w);
  std::vector<la::Triplet> triplets;
  triplets.reserve(w.NumNonZeros() + n);
  const auto& offsets = w.row_offsets();
  const auto& cols = w.col_indices();
  const auto& vals = w.values();

  la::Vector inv_sqrt(n);
  if (kind == LaplacianKind::kSymmetric) {
    for (std::size_t i = 0; i < n; ++i) {
      inv_sqrt[i] = deg[i] > 0.0 ? 1.0 / std::sqrt(deg[i]) : 0.0;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const std::size_t j = cols[k];
      double v = vals[k];
      switch (kind) {
        case LaplacianKind::kUnnormalized:
          break;
        case LaplacianKind::kSymmetric:
          v *= inv_sqrt[i] * inv_sqrt[j];
          break;
        case LaplacianKind::kRandomWalk:
          v *= deg[i] > 0.0 ? 1.0 / deg[i] : 0.0;
          break;
      }
      if (v != 0.0) triplets.push_back({i, j, -v});
    }
    const double diag =
        kind == LaplacianKind::kUnnormalized ? deg[i] : 1.0;
    triplets.push_back({i, i, diag});
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

StatusOr<la::Matrix> NormalizedAdjacency(const la::Matrix& w,
                                         double symmetry_tol) {
  UMVSC_RETURN_IF_ERROR(ValidateAffinity(w, symmetry_tol));
  const std::size_t n = w.rows();
  la::Vector deg = Degrees(w);
  la::Vector inv_sqrt(n);
  for (std::size_t i = 0; i < n; ++i) {
    inv_sqrt[i] = deg[i] > 0.0 ? 1.0 / std::sqrt(deg[i]) : 0.0;
  }
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = inv_sqrt[i] * w(i, j) * inv_sqrt[j];
    }
  }
  return a;
}

}  // namespace umvsc::graph
