#include "graph/knn_graph.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/parallel.h"

namespace umvsc::graph {

namespace {

// Indices of the k largest off-diagonal entries of row i.
std::vector<std::size_t> TopKNeighbors(const la::Matrix& affinity,
                                       std::size_t i, std::size_t k) {
  const std::size_t n = affinity.cols();
  std::vector<std::size_t> idx;
  idx.reserve(n - 1);
  for (std::size_t j = 0; j < n; ++j) {
    if (j != i) idx.push_back(j);
  }
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      return affinity(i, a) > affinity(i, b);
                    });
  idx.resize(k);
  return idx;
}

}  // namespace

StatusOr<la::CsrMatrix> BuildKnnGraph(const la::Matrix& affinity,
                                      std::size_t k,
                                      KnnSymmetrization symmetrization) {
  if (!affinity.IsSquare()) {
    return Status::InvalidArgument("BuildKnnGraph requires a square affinity");
  }
  const std::size_t n = affinity.rows();
  if (k < 1 || k >= n) {
    return Status::InvalidArgument("BuildKnnGraph requires 1 <= k < n");
  }
  for (std::size_t i = 0; i < affinity.size(); ++i) {
    if (affinity.data()[i] < 0.0) {
      return Status::InvalidArgument("affinities must be nonnegative");
    }
  }

  // Directed selection mask: selected(i, j) = affinity if j is a kNN of i.
  // Kept dense (n² bools worth of doubles) for simplicity at library scale.
  // Each iteration writes only row i, so the neighbor search — the O(n²
  // log k) part — runs row-parallel with write-disjoint spans.
  la::Matrix selected(n, n);
  ParallelFor(0, n, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j : TopKNeighbors(affinity, i, k)) {
        selected(i, j) = affinity(i, j);
      }
    }
  });

  // Symmetrization: row i emits its (i, j>i) pairs into a private buffer;
  // the buffers concatenate in row order, reproducing the serial emission
  // order exactly (determinism of the CSR assembly).
  std::vector<std::vector<la::Triplet>> row_triplets(n);
  ParallelFor(0, n, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double a = selected(i, j);
        const double b = selected(j, i);
        double w = 0.0;
        switch (symmetrization) {
          case KnnSymmetrization::kUnion:
            w = std::max(a, b);
            break;
          case KnnSymmetrization::kMutual:
            w = (a > 0.0 && b > 0.0) ? std::min(a, b) : 0.0;
            break;
          case KnnSymmetrization::kAverage:
            w = 0.5 * (a + b);
            break;
        }
        if (w > 0.0) {
          row_triplets[i].push_back({i, j, w});
          row_triplets[i].push_back({j, i, w});
        }
      }
    }
  });
  std::vector<la::Triplet> triplets;
  for (std::vector<la::Triplet>& row : row_triplets) {
    triplets.insert(triplets.end(), row.begin(), row.end());
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

StatusOr<la::CsrMatrix> AdaptiveNeighborGraph(const la::Matrix& sq_dists,
                                              std::size_t k) {
  if (!sq_dists.IsSquare()) {
    return Status::InvalidArgument(
        "AdaptiveNeighborGraph requires a square distance matrix");
  }
  const std::size_t n = sq_dists.rows();
  if (k < 1 || k + 1 >= n) {
    return Status::InvalidArgument(
        "AdaptiveNeighborGraph requires 1 <= k < n - 1");
  }

  // Rows are independent simplex problems; solve them in parallel into
  // per-row buffers and concatenate in row order so the triplet stream —
  // and therefore the CSR duplicate-summation order — matches the serial
  // path exactly.
  std::vector<std::vector<la::Triplet>> row_triplets(n);
  ParallelFor(0, n, 16, [&](std::size_t lo, std::size_t hi) {
    std::vector<std::size_t> idx;
    idx.reserve(n - 1);
    for (std::size_t i = lo; i < hi; ++i) {
      // Sort the k+1 smallest distances among other points.
      idx.clear();
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) idx.push_back(j);
      }
      std::partial_sort(idx.begin(), idx.begin() + (k + 1), idx.end(),
                        [&](std::size_t a, std::size_t b) {
                          return sq_dists(i, a) < sq_dists(i, b);
                        });
      const double d_kplus1 = sq_dists(i, idx[k]);
      double sum_k = 0.0;
      for (std::size_t j = 0; j < k; ++j) sum_k += sq_dists(i, idx[j]);
      const double denom = static_cast<double>(k) * d_kplus1 - sum_k;
      for (std::size_t j = 0; j < k; ++j) {
        double w;
        if (denom > 1e-300) {
          w = (d_kplus1 - sq_dists(i, idx[j])) / denom;
        } else {
          // All k+1 nearest distances tie: fall back to uniform weights.
          w = 1.0 / static_cast<double>(k);
        }
        if (w > 0.0) {
          // Symmetrized as (W + Wᵀ)/2: emit half from each endpoint.
          row_triplets[i].push_back({i, idx[j], 0.5 * w});
          row_triplets[i].push_back({idx[j], i, 0.5 * w});
        }
      }
    }
  });
  std::vector<la::Triplet> triplets;
  for (std::vector<la::Triplet>& row : row_triplets) {
    triplets.insert(triplets.end(), row.begin(), row.end());
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace umvsc::graph
