#include "graph/knn_graph.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "graph/distance.h"
#include "graph/kernels.h"
#include "graph/tiled_select.h"

namespace umvsc::graph {

namespace {

using internal::DirectedSelection;
using internal::PanelFiller;
using internal::TiledSelect;

// Panels that read rows of an already-materialized score matrix — the
// dense-input wrappers route through the same tiled core as the
// feature-direct builders, so both paths share one selection/emission
// implementation and emit identical graphs.
PanelFiller DenseRowFiller(const la::Matrix& scores) {
  return [&scores](std::size_t r0, std::size_t r1, double* panel) {
    std::memcpy(panel, scores.RowPtr(r0), (r1 - r0) * scores.cols() * sizeof(double));
  };
}

// Symmetrizes a directed top-k selection into the undirected CSR graph.
// Works on per-row neighbor lists only — O(n·k) memory:
//  1. per-row column-sorted copies of the directed selection,
//  2. its transpose (who selected me), built by a counting pass,
//  3. a sorted two-pointer merge per row i over both lists restricted to
//     j > i, emitting {i,j,w} and {j,i,w} exactly as the dense scan did.
// Rows emit into private buffers concatenated in row order, so the triplet
// stream — and the assembled CSR — is bitwise identical at every thread
// count.
la::CsrMatrix SymmetrizeDirected(const DirectedSelection& sel,
                                 KnnSymmetrization symmetrization) {
  const std::size_t n = sel.n;
  const std::size_t k = sel.k;

  // 1. Column-sorted per-row copies (selection arrives in rank order).
  std::vector<std::size_t> scols(sel.cols);
  std::vector<double> svals(sel.vals);
  ParallelFor(0, n, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t base = i * k;
      const std::size_t m = sel.counts[i];
      // Insertion sort by column; m <= k is small and columns are unique.
      for (std::size_t a = 1; a < m; ++a) {
        const std::size_t c = scols[base + a];
        const double v = svals[base + a];
        std::size_t b = a;
        while (b > 0 && scols[base + b - 1] > c) {
          scols[base + b] = scols[base + b - 1];
          svals[base + b] = svals[base + b - 1];
          --b;
        }
        scols[base + b] = c;
        svals[base + b] = v;
      }
    }
  });

  // 2. Transpose lists: for each j, the rows i that selected j, ascending
  // (guaranteed by the ascending-i fill order). Serial O(n·k) pass.
  std::vector<std::size_t> toff(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r = 0; r < sel.counts[i]; ++r) {
      ++toff[sel.cols[i * k + r] + 1];
    }
  }
  for (std::size_t j = 0; j < n; ++j) toff[j + 1] += toff[j];
  std::vector<std::size_t> trow(toff[n]);
  std::vector<double> tval(toff[n]);
  {
    std::vector<std::size_t> cursor(toff.begin(), toff.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t r = 0; r < sel.counts[i]; ++r) {
        const std::size_t j = sel.cols[i * k + r];
        trow[cursor[j]] = i;
        tval[cursor[j]] = sel.vals[i * k + r];
        ++cursor[j];
      }
    }
  }

  // 3. Merge + emit. For each unordered pair only the i < j endpoint emits,
  // reproducing the dense path's emission order exactly.
  std::vector<std::vector<la::Triplet>> row_triplets(n);
  ParallelFor(0, n, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t base = i * k;
      std::size_t a = 0;                       // cursor into row i's out-list
      const std::size_t am = sel.counts[i];
      while (a < am && scols[base + a] <= i) ++a;
      std::size_t b = toff[i];                 // cursor into row i's in-list
      const std::size_t bm = toff[i + 1];
      while (b < bm && trow[b] <= i) ++b;
      while (a < am || b < bm) {
        const std::size_t ja = a < am ? scols[base + a] : n;
        const std::size_t jb = b < bm ? trow[b] : n;
        const std::size_t j = std::min(ja, jb);
        double out_w = 0.0;  // i selected j
        double in_w = 0.0;   // j selected i
        if (ja == j) {
          out_w = svals[base + a];
          ++a;
        }
        if (jb == j) {
          in_w = tval[b];
          ++b;
        }
        double w = 0.0;
        switch (symmetrization) {
          case KnnSymmetrization::kUnion:
            w = std::max(out_w, in_w);
            break;
          case KnnSymmetrization::kMutual:
            w = (out_w > 0.0 && in_w > 0.0) ? std::min(out_w, in_w) : 0.0;
            break;
          case KnnSymmetrization::kAverage:
            w = 0.5 * (out_w + in_w);
            break;
        }
        if (w > 0.0) {
          row_triplets[i].push_back({i, j, w});
          row_triplets[i].push_back({j, i, w});
        }
      }
    }
  });
  std::vector<la::Triplet> triplets;
  for (std::vector<la::Triplet>& row : row_triplets) {
    triplets.insert(triplets.end(), row.begin(), row.end());
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

// Turns a directed (k+1)-nearest selection (rank order: nearest first) into
// the CAN adaptive-neighbor graph, replicating the closed-form weights and
// the (W + Wᵀ)/2 emission of the historical dense implementation.
la::CsrMatrix AdaptiveWeightsFromSelection(const DirectedSelection& sel,
                                           std::size_t k) {
  const std::size_t n = sel.n;
  const std::size_t slots = sel.k;  // k + 1
  std::vector<std::vector<la::Triplet>> row_triplets(n);
  ParallelFor(0, n, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t base = i * slots;
      const double d_kplus1 = sel.vals[base + k];
      double sum_k = 0.0;
      for (std::size_t r = 0; r < k; ++r) sum_k += sel.vals[base + r];
      const double denom = static_cast<double>(k) * d_kplus1 - sum_k;
      for (std::size_t r = 0; r < k; ++r) {
        double w;
        if (denom > 1e-300) {
          w = (d_kplus1 - sel.vals[base + r]) / denom;
        } else {
          // All k+1 nearest distances tie: fall back to uniform weights.
          w = 1.0 / static_cast<double>(k);
        }
        if (w > 0.0) {
          // Symmetrized as (W + Wᵀ)/2: emit half from each endpoint.
          row_triplets[i].push_back({i, sel.cols[base + r], 0.5 * w});
          row_triplets[i].push_back({sel.cols[base + r], i, 0.5 * w});
        }
      }
    }
  });
  std::vector<la::Triplet> triplets;
  for (std::vector<la::Triplet>& row : row_triplets) {
    triplets.insert(triplets.end(), row.begin(), row.end());
  }
  return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace

StatusOr<la::CsrMatrix> BuildKnnGraph(const la::Matrix& affinity,
                                      std::size_t k,
                                      KnnSymmetrization symmetrization,
                                      const TiledGraphOptions& tiling) {
  if (!affinity.IsSquare()) {
    return Status::InvalidArgument("BuildKnnGraph requires a square affinity");
  }
  const std::size_t n = affinity.rows();
  if (k < 1 || k >= n) {
    return Status::InvalidArgument("BuildKnnGraph requires 1 <= k < n");
  }
  // The nonnegativity validation rides the selection pass (every panel
  // entry is inspected exactly once) instead of a serial O(n²) prescan.
  bool negative = false;
  DirectedSelection sel =
      TiledSelect(n, k, /*largest=*/true, tiling.tile_rows,
                  DenseRowFiller(affinity), &negative);
  if (negative) {
    return Status::InvalidArgument("affinities must be nonnegative");
  }
  return SymmetrizeDirected(sel, symmetrization);
}

StatusOr<la::CsrMatrix> BuildKnnGraphFromFeatures(
    const la::Matrix& x, std::size_t k, KnnSymmetrization symmetrization,
    const TiledGraphOptions& tiling) {
  const std::size_t n = x.rows();
  if (n < 2) {
    return Status::InvalidArgument(
        "BuildKnnGraphFromFeatures requires at least 2 samples");
  }
  if (k < 1 || k >= n) {
    return Status::InvalidArgument("BuildKnnGraph requires 1 <= k < n");
  }
  StatusOr<la::Vector> scales = SelfTuningScales(x, k, tiling.tile_rows);
  if (!scales.ok()) return scales.status();
  const la::Vector sq_norms = RowSquaredNorms(x);
  const la::Vector& scale = *scales;
  // Fused panel: squared distances → self-tuning kernel values, identical
  // expression (and therefore bits) to SelfTuningKernel's dense fill.
  PanelFiller fill = [&](std::size_t r0, std::size_t r1, double* panel) {
    SquaredDistancePanel(x, sq_norms, r0, r1, panel);
    for (std::size_t i = r0; i < r1; ++i) {
      double* prow = panel + (i - r0) * n;
      for (std::size_t j = 0; j < n; ++j) {
        prow[j] = j == i ? 0.0 : std::exp(-prow[j] / (scale[i] * scale[j]));
      }
    }
  };
  DirectedSelection sel = TiledSelect(n, k, /*largest=*/true,
                                      tiling.tile_rows, fill,
                                      /*negative_seen=*/nullptr);
  return SymmetrizeDirected(sel, symmetrization);
}

StatusOr<la::CsrMatrix> AdaptiveNeighborGraph(const la::Matrix& sq_dists,
                                              std::size_t k,
                                              const TiledGraphOptions& tiling) {
  if (!sq_dists.IsSquare()) {
    return Status::InvalidArgument(
        "AdaptiveNeighborGraph requires a square distance matrix");
  }
  const std::size_t n = sq_dists.rows();
  if (k < 1 || k + 1 >= n) {
    return Status::InvalidArgument(
        "AdaptiveNeighborGraph requires 1 <= k < n - 1");
  }
  DirectedSelection sel =
      TiledSelect(n, k + 1, /*largest=*/false, tiling.tile_rows,
                  DenseRowFiller(sq_dists), /*negative_seen=*/nullptr);
  return AdaptiveWeightsFromSelection(sel, k);
}

StatusOr<la::CsrMatrix> AdaptiveNeighborGraphFromFeatures(
    const la::Matrix& x, std::size_t k, const TiledGraphOptions& tiling) {
  const std::size_t n = x.rows();
  if (k < 1 || k + 1 >= n) {
    return Status::InvalidArgument(
        "AdaptiveNeighborGraph requires 1 <= k < n - 1");
  }
  const la::Vector sq_norms = RowSquaredNorms(x);
  DirectedSelection sel = TiledSelect(
      n, k + 1, /*largest=*/false, tiling.tile_rows,
      [&](std::size_t r0, std::size_t r1, double* panel) {
        SquaredDistancePanel(x, sq_norms, r0, r1, panel);
      },
      /*negative_seen=*/nullptr);
  return AdaptiveWeightsFromSelection(sel, k);
}

}  // namespace umvsc::graph
