#include "graph/anchors.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/distance.h"
#include "graph/tiled_select.h"

namespace umvsc::graph {

namespace {

// Squared Euclidean distance between a candidate row and a center row,
// accumulated in ascending-feature order (the determinism convention of
// every distance kernel in this library).
double RowSquaredDistance(const double* a, const double* b, std::size_t d) {
  double s = 0.0;
  for (std::size_t p = 0; p < d; ++p) {
    const double diff = a[p] - b[p];
    s += diff * diff;
  }
  return s;
}

// k-means++ seeding + a few Lloyd sweeps over a bounded candidate subsample.
// Entirely serial and driven by `rng`, so the anchors are a pure function of
// (x, options) — never the thread count.
la::Matrix KmeansppRefineAnchors(const la::Matrix& x,
                                 const AnchorOptions& options, Rng& rng) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const std::size_t m = options.num_anchors;
  const std::size_t num_candidates = std::min(
      n, std::max<std::size_t>(options.candidate_factor * m, 1024));

  la::Matrix candidates(num_candidates, d);
  {
    const std::vector<std::size_t> ids =
        rng.SampleWithoutReplacement(n, num_candidates);
    for (std::size_t i = 0; i < num_candidates; ++i) {
      candidates.SetRow(i, x.Row(ids[i]));
    }
  }

  // Seeding: first center uniform, each next center drawn with probability
  // proportional to the candidate's squared distance to its nearest chosen
  // center. When every remaining candidate coincides with a chosen center
  // (total weight 0 — duplicated data), fall back to the smallest unchosen
  // candidate index so exactly m centers always come back.
  la::Matrix centers(m, d);
  std::vector<double> min_d2(num_candidates, 0.0);
  std::vector<bool> chosen(num_candidates, false);
  std::size_t first = static_cast<std::size_t>(rng.UniformInt(num_candidates));
  centers.SetRow(0, candidates.Row(first));
  chosen[first] = true;
  for (std::size_t i = 0; i < num_candidates; ++i) {
    min_d2[i] =
        RowSquaredDistance(candidates.RowPtr(i), centers.RowPtr(0), d);
  }
  for (std::size_t t = 1; t < m; ++t) {
    double total = 0.0;
    for (double w : min_d2) total += w;
    std::size_t pick = num_candidates;
    if (total > 0.0) {
      pick = rng.SampleDiscrete(min_d2);
    } else {
      for (std::size_t i = 0; i < num_candidates; ++i) {
        if (!chosen[i]) {
          pick = i;
          break;
        }
      }
      if (pick == num_candidates) pick = t % num_candidates;
    }
    centers.SetRow(t, candidates.Row(pick));
    chosen[pick] = true;
    for (std::size_t i = 0; i < num_candidates; ++i) {
      const double d2 =
          RowSquaredDistance(candidates.RowPtr(i), centers.RowPtr(t), d);
      if (d2 < min_d2[i]) min_d2[i] = d2;
    }
  }

  // Lloyd refinement restricted to the candidate subsample. Assignment ties
  // keep the smaller center index; an empty cluster keeps its previous
  // center (it stays a valid landmark).
  std::vector<std::size_t> assign(num_candidates, 0);
  la::Matrix sums(m, d);
  std::vector<std::size_t> counts(m, 0);
  for (std::size_t sweep = 0; sweep < options.refine_iterations; ++sweep) {
    for (std::size_t i = 0; i < num_candidates; ++i) {
      double best = RowSquaredDistance(candidates.RowPtr(i),
                                       centers.RowPtr(0), d);
      std::size_t best_j = 0;
      for (std::size_t j = 1; j < m; ++j) {
        const double d2 =
            RowSquaredDistance(candidates.RowPtr(i), centers.RowPtr(j), d);
        if (d2 < best) {
          best = d2;
          best_j = j;
        }
      }
      assign[i] = best_j;
    }
    sums.Fill(0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < num_candidates; ++i) {
      double* srow = sums.RowPtr(assign[i]);
      const double* crow = candidates.RowPtr(i);
      for (std::size_t p = 0; p < d; ++p) srow[p] += crow[p];
      counts[assign[i]]++;
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (counts[j] == 0) continue;
      const double inv = 1.0 / static_cast<double>(counts[j]);
      double* crow = centers.RowPtr(j);
      const double* srow = sums.RowPtr(j);
      for (std::size_t p = 0; p < d; ++p) crow[p] = srow[p] * inv;
    }
  }
  return centers;
}

}  // namespace

StatusOr<la::Matrix> SelectAnchors(const la::Matrix& x,
                                   const AnchorOptions& options) {
  const std::size_t n = x.rows();
  const std::size_t m = options.num_anchors;
  if (n == 0 || x.cols() == 0) {
    return Status::InvalidArgument("SelectAnchors requires non-empty features");
  }
  if (m < 1 || m > n) {
    return Status::InvalidArgument(
        "SelectAnchors requires 1 <= num_anchors <= n");
  }
  Rng rng(options.seed);
  if (options.selection == AnchorSelection::kUniform) {
    const std::vector<std::size_t> ids = rng.SampleWithoutReplacement(n, m);
    la::Matrix anchors(m, x.cols());
    for (std::size_t i = 0; i < m; ++i) anchors.SetRow(i, x.Row(ids[i]));
    return anchors;
  }
  return KmeansppRefineAnchors(x, options, rng);
}

StatusOr<la::CsrMatrix> BuildAnchorAffinity(const la::Matrix& x,
                                            const la::Matrix& anchors,
                                            const AnchorGraphOptions& options) {
  const std::size_t n = x.rows();
  const std::size_t m = anchors.rows();
  const std::size_t s = options.anchor_neighbors;
  if (n == 0 || x.cols() == 0 || m == 0) {
    return Status::InvalidArgument(
        "BuildAnchorAffinity requires non-empty points and anchors");
  }
  if (x.cols() != anchors.cols()) {
    return Status::InvalidArgument(
        "points and anchors must share a feature dimension");
  }
  if (s < 1 || s > m) {
    return Status::InvalidArgument(
        "BuildAnchorAffinity requires 1 <= anchor_neighbors <= anchors");
  }

  const la::Vector x_norms = RowSquaredNorms(x);
  const la::Vector a_norms = RowSquaredNorms(anchors);
  const internal::DirectedSelection sel = internal::TiledSelectRect(
      n, m, s, /*largest=*/false, options.tile_rows,
      [&](std::size_t r0, std::size_t r1, double* panel) {
        CrossSquaredDistancePanel(x, x_norms, anchors, a_norms, r0, r1, panel);
      });

  // Weight + normalize + column-sort each row. Every row depends only on its
  // own selection (its bandwidth is its own s-th-nearest distance), so the
  // pass is row-parallel, write-disjoint, and bitwise deterministic. The
  // weight sum is accumulated in rank order (a fixed order per row), NOT in
  // column order, so it too is a pure function of the row.
  std::vector<std::size_t> row_offsets(n + 1);
  for (std::size_t i = 0; i <= n; ++i) row_offsets[i] = i * s;
  std::vector<std::size_t> cols(n * s);
  std::vector<double> vals(n * s);
  ParallelFor(0, n, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t base = i * s;
      // Rank order is ascending distance: the last kept entry is the s-th
      // nearest, whose squared distance is the self-tuning bandwidth.
      const double sigma2 = std::max(sel.vals[base + s - 1], 1e-300);
      double sum = 0.0;
      for (std::size_t r = 0; r < s; ++r) {
        const double w = std::exp(-sel.vals[base + r] / sigma2);
        cols[base + r] = sel.cols[base + r];
        vals[base + r] = w;
        sum += w;
      }
      const double inv = 1.0 / sum;  // sum >= exp(-1) by construction
      for (std::size_t r = 0; r < s; ++r) vals[base + r] *= inv;
      // Insertion sort to ascending column order (s is small), values ride
      // along — CSR requires strictly ascending columns per row.
      for (std::size_t r = 1; r < s; ++r) {
        const std::size_t cr = cols[base + r];
        const double vr = vals[base + r];
        std::size_t q = r;
        while (q > 0 && cols[base + q - 1] > cr) {
          cols[base + q] = cols[base + q - 1];
          vals[base + q] = vals[base + q - 1];
          --q;
        }
        cols[base + q] = cr;
        vals[base + q] = vr;
      }
    }
  });
  return la::CsrMatrix::FromParts(n, m, std::move(row_offsets),
                                  std::move(cols), std::move(vals));
}

}  // namespace umvsc::graph
