#include "graph/tiled_select.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "common/parallel.h"

namespace umvsc::graph::internal {

namespace {

// Shared tile-parallel driver of the square and rectangular selections. The
// tile grid is a pure function of (n_rows, tile_rows); threads own contiguous
// tile runs and every row's selection depends only on its own panel row, so
// the output is bitwise identical at every thread count and tile size.
DirectedSelection TiledSelectImpl(std::size_t n_rows, std::size_t n_cols,
                                  std::size_t k, bool largest,
                                  std::size_t tile_rows,
                                  const PanelFiller& fill, bool skip_diagonal,
                                  bool* negative_seen) {
  const std::size_t tile =
      std::max<std::size_t>(1, std::min(tile_rows, n_rows));
  const std::size_t num_tiles = (n_rows + tile - 1) / tile;
  const bool check_nonneg = negative_seen != nullptr;

  DirectedSelection out;
  out.n = n_rows;
  out.k = k;
  out.cols.resize(n_rows * k);
  out.vals.resize(n_rows * k);
  out.counts.assign(n_rows, 0);

  // One flag slot per tile: write-disjoint, collected in tile order after
  // the region so the verdict never depends on scheduling.
  std::vector<std::uint8_t> tile_negative(num_tiles, 0);

  ParallelFor(0, num_tiles, 1, [&](std::size_t tlo, std::size_t thi) {
    // Per-thread reusable workspaces: one score panel and one bounded
    // selector serve every tile in this thread's contiguous run.
    std::vector<double> panel(tile * n_cols);
    BoundedTopK selector(k, largest);
    for (std::size_t t = tlo; t < thi; ++t) {
      const std::size_t r0 = t * tile;
      const std::size_t r1 = std::min(n_rows, r0 + tile);
      fill(r0, r1, panel.data());
      for (std::size_t i = r0; i < r1; ++i) {
        const double* prow = panel.data() + (i - r0) * n_cols;
        selector.Reset();
        bool neg = false;
        for (std::size_t j = 0; j < n_cols; ++j) {
          const double v = prow[j];
          if (check_nonneg && v < 0.0) neg = true;
          if (skip_diagonal && j == i) continue;
          selector.Offer(v, j);
        }
        if (neg) tile_negative[t] = 1;
        const std::size_t m = selector.size();
        out.counts[i] = m;
        for (std::size_t r = 0; r < m; ++r) {
          out.cols[i * k + r] = selector.index(r);
          out.vals[i * k + r] = selector.value(r);
        }
      }
    }
  });

  if (check_nonneg) {
    *negative_seen = false;
    for (std::uint8_t flag : tile_negative) {
      if (flag) *negative_seen = true;
    }
  }
  return out;
}

}  // namespace

DirectedSelection TiledSelect(std::size_t n, std::size_t k, bool largest,
                              std::size_t tile_rows, const PanelFiller& fill,
                              bool* negative_seen) {
  UMVSC_CHECK(k >= 1 && k < n, "TiledSelect requires 1 <= k < n");
  return TiledSelectImpl(n, n, k, largest, tile_rows, fill,
                         /*skip_diagonal=*/true, negative_seen);
}

DirectedSelection TiledSelectRect(std::size_t n_rows, std::size_t n_cols,
                                  std::size_t k, bool largest,
                                  std::size_t tile_rows,
                                  const PanelFiller& fill) {
  UMVSC_CHECK(k >= 1 && k <= n_cols,
              "TiledSelectRect requires 1 <= k <= n_cols");
  return TiledSelectImpl(n_rows, n_cols, k, largest, tile_rows, fill,
                         /*skip_diagonal=*/false, /*negative_seen=*/nullptr);
}

}  // namespace umvsc::graph::internal
