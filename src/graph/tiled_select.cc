#include "graph/tiled_select.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "common/parallel.h"

namespace umvsc::graph::internal {

DirectedSelection TiledSelect(std::size_t n, std::size_t k, bool largest,
                              std::size_t tile_rows, const PanelFiller& fill,
                              bool* negative_seen) {
  UMVSC_CHECK(k >= 1 && k < n, "TiledSelect requires 1 <= k < n");
  const std::size_t tile = std::max<std::size_t>(1, std::min(tile_rows, n));
  const std::size_t num_tiles = (n + tile - 1) / tile;
  const bool check_nonneg = negative_seen != nullptr;

  DirectedSelection out;
  out.n = n;
  out.k = k;
  out.cols.resize(n * k);
  out.vals.resize(n * k);
  out.counts.assign(n, 0);

  // One flag slot per tile: write-disjoint, collected in tile order after
  // the region so the verdict never depends on scheduling.
  std::vector<std::uint8_t> tile_negative(num_tiles, 0);

  ParallelFor(0, num_tiles, 1, [&](std::size_t tlo, std::size_t thi) {
    // Per-thread reusable workspaces: one score panel and one bounded
    // selector serve every tile in this thread's contiguous run.
    std::vector<double> panel(tile * n);
    BoundedTopK selector(k, largest);
    for (std::size_t t = tlo; t < thi; ++t) {
      const std::size_t r0 = t * tile;
      const std::size_t r1 = std::min(n, r0 + tile);
      fill(r0, r1, panel.data());
      for (std::size_t i = r0; i < r1; ++i) {
        const double* prow = panel.data() + (i - r0) * n;
        selector.Reset();
        bool neg = false;
        for (std::size_t j = 0; j < n; ++j) {
          const double v = prow[j];
          if (check_nonneg && v < 0.0) neg = true;
          if (j == i) continue;
          selector.Offer(v, j);
        }
        if (neg) tile_negative[t] = 1;
        const std::size_t m = selector.size();
        out.counts[i] = m;
        for (std::size_t r = 0; r < m; ++r) {
          out.cols[i * k + r] = selector.index(r);
          out.vals[i * k + r] = selector.value(r);
        }
      }
    }
  });

  if (check_nonneg) {
    *negative_seen = false;
    for (std::uint8_t flag : tile_negative) {
      if (flag) *negative_seen = true;
    }
  }
  return out;
}

}  // namespace umvsc::graph::internal
