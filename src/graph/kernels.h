#ifndef UMVSC_GRAPH_KERNELS_H_
#define UMVSC_GRAPH_KERNELS_H_

#include <cstddef>

#include "common/status.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace umvsc::graph {

/// Gaussian (RBF) affinity from squared distances:
/// W_ij = exp(−D²_ij / (2σ²)), diagonal forced to 0 (no self-loop), as is
/// conventional for spectral clustering graphs. Requires σ > 0.
StatusOr<la::Matrix> GaussianKernel(const la::Matrix& sq_dists, double sigma);

/// Self-tuning affinity of Zelnik-Manor & Perona: per-point scales σ_i set
/// to the distance to the k-th nearest neighbor, W_ij = exp(−D²_ij/(σ_i·σ_j)).
/// Robust to clusters of different densities — the default graph builder for
/// the multi-view benchmarks. Requires 1 <= k < n.
StatusOr<la::Matrix> SelfTuningKernel(const la::Matrix& sq_dists,
                                      std::size_t k);

/// The self-tuning bandwidths σ_i (distance from point i to its k-th
/// nearest other point) computed straight from the n × d feature matrix in
/// O(n·k + tile_rows·n) memory: squared distances are evaluated in
/// tile_rows × n panels and each row feeds a bounded k-smallest selector.
/// σ_i is bitwise identical to what SelfTuningKernel derives from the dense
/// distance matrix. Requires 1 <= k < n. Tile-parallel and bitwise
/// deterministic across thread counts and tile sizes.
StatusOr<la::Vector> SelfTuningScales(const la::Matrix& x, std::size_t k,
                                      std::size_t tile_rows = 128);

/// The median heuristic bandwidth: σ = median of nonzero pairwise distances.
/// Returns an error when every pairwise distance is zero.
StatusOr<double> MedianHeuristicSigma(const la::Matrix& sq_dists);

}  // namespace umvsc::graph

#endif  // UMVSC_GRAPH_KERNELS_H_
