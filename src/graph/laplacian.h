#ifndef UMVSC_GRAPH_LAPLACIAN_H_
#define UMVSC_GRAPH_LAPLACIAN_H_

#include "common/status.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace umvsc::graph {

/// Which graph Laplacian to build.
enum class LaplacianKind {
  kUnnormalized,  ///< L = D − W
  kSymmetric,     ///< L = I − D^{−1/2}·W·D^{−1/2}
  kRandomWalk,    ///< L = I − D^{−1}·W
};

/// Weighted degree vector d_i = Σ_j W_ij of a symmetric affinity.
la::Vector Degrees(const la::Matrix& w);
la::Vector Degrees(const la::CsrMatrix& w);

/// Dense Laplacian of a symmetric nonnegative affinity matrix. Isolated
/// vertices (zero degree) contribute identity rows in the normalized kinds,
/// matching the convention that an isolated vertex is its own component.
/// Fails on non-square, negative, or (beyond tol) asymmetric input.
StatusOr<la::Matrix> Laplacian(const la::Matrix& w, LaplacianKind kind,
                               double symmetry_tol = 1e-9);

/// Sparse Laplacian of a symmetric CSR affinity (same conventions).
StatusOr<la::CsrMatrix> Laplacian(const la::CsrMatrix& w, LaplacianKind kind,
                                  double symmetry_tol = 1e-9);

/// The normalized adjacency D^{−1/2}·W·D^{−1/2} (dense), whose top
/// eigenvectors equal the bottom eigenvectors of the symmetric Laplacian —
/// handy for Lanczos on the better-conditioned operator.
StatusOr<la::Matrix> NormalizedAdjacency(const la::Matrix& w,
                                         double symmetry_tol = 1e-9);

}  // namespace umvsc::graph

#endif  // UMVSC_GRAPH_LAPLACIAN_H_
