#ifndef UMVSC_GRAPH_ANCHORS_H_
#define UMVSC_GRAPH_ANCHORS_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace umvsc::graph {

/// How the m anchor rows are chosen from the n data rows.
enum class AnchorSelection {
  /// Deterministic uniform sample without replacement (seeded).
  kUniform,
  /// Seeded k-means++ seeding over a bounded candidate subsample, followed
  /// by a few Lloyd refinement sweeps restricted to that subsample. Spreads
  /// the anchors to cover the data far better than a uniform draw at
  /// essentially no cost: every step is O(candidates·m·d) with
  /// candidates = O(m), independent of n.
  kKmeansppRefine,
};

/// Options for per-view anchor selection.
struct AnchorOptions {
  /// Anchor count m. Accuracy and cost both grow with m; m ≈ 10–50 ×
  /// clusters is typical for the large-scale path.
  std::size_t num_anchors = 256;
  AnchorSelection selection = AnchorSelection::kKmeansppRefine;
  /// Lloyd sweeps over the candidate subsample (kKmeansppRefine only).
  std::size_t refine_iterations = 4;
  /// Candidate pool for the k-means++ stage: min(n, max(candidate_factor·m,
  /// 1024)) uniformly sampled rows. Bounds the whole selection at O(m²·d).
  std::size_t candidate_factor = 8;
  std::uint64_t seed = 0;
};

/// Selects m anchor points from the rows of `x` (n × d). Entirely serial and
/// seeded — the result is a pure function of (x, options), independent of
/// thread count. Requires 1 <= num_anchors <= n.
///
/// kUniform returns the sampled rows in draw order. kKmeansppRefine returns
/// the refined candidate-subset centroids (anchors need not coincide with
/// data rows after refinement — they are landmarks, not medoids); an empty
/// refinement cluster keeps its previous center, so exactly m anchors come
/// back in all cases.
StatusOr<la::Matrix> SelectAnchors(const la::Matrix& x,
                                   const AnchorOptions& options);

/// Options for the bipartite anchor-affinity builder.
struct AnchorGraphOptions {
  /// Nonzeros per row s: each point connects to its s nearest anchors.
  std::size_t anchor_neighbors = 5;
  /// Row-tile height of the tiled distance panels (memory/locality knob,
  /// never a semantics knob — the output is bitwise identical at every
  /// setting, exactly like TiledGraphOptions::tile_rows).
  std::size_t tile_rows = 128;
};

/// Builds the bipartite anchor affinity Z (n × m CSR, s nonzeros per row):
/// point i connects to its s nearest anchors j with self-tuning Gaussian
/// weights exp(−d²_ij / σ²_i), σ²_i = the s-th-nearest squared distance
/// (clamped away from zero), then each row is normalized to sum to 1 — so Z
/// is row-stochastic and the implicit affinity Ẑ·Ẑᵀ has spectrum in [0, 1].
/// Ties at the s-th distance keep the smaller anchor index (the BoundedTopK
/// rule); within a row, columns are stored in ascending anchor order.
///
/// Runs on tile_rows × m distance panels through the tiled selection core:
/// peak auxiliary memory is O(tile_rows·m) per participating thread plus the
/// O(n·s) output — never an n × m dense buffer — and the result is bitwise
/// identical at every tile size and thread count. Requires
/// 1 <= anchor_neighbors <= anchors.rows() and matching feature dims.
StatusOr<la::CsrMatrix> BuildAnchorAffinity(
    const la::Matrix& x, const la::Matrix& anchors,
    const AnchorGraphOptions& options = {});

}  // namespace umvsc::graph

#endif  // UMVSC_GRAPH_ANCHORS_H_
