#include "mvsc/anchor_assign.h"

#include <cmath>

namespace umvsc::mvsc::assign {

double BlockedDot(const double* x, const double* y, std::size_t k) {
  double acc = 0.0;
  for (std::size_t kk = 0; kk < k; kk += kGemmKcBlock) {
    const std::size_t kcb = std::min(kGemmKcBlock, k - kk);
    double partial = 0.0;
    for (std::size_t q = 0; q < kcb; ++q) {
      partial += x[kk + q] * y[kk + q];
    }
    acc += partial;
  }
  return acc;
}

double RowSquaredNorm(const double* x, std::size_t k) {
  double s = 0.0;
  for (std::size_t p = 0; p < k; ++p) s += x[p] * x[p];
  return s;
}

void SelectAnchorRow(const double* d2, std::size_t m, std::size_t s,
                     std::size_t* cols, double* weights) {
  // Bounded s-best insertion; `weights` holds the kept squared distances in
  // rank (ascending-distance) order until they are turned into weights.
  // Strict comparisons on both the skip and the shift keep ties on the
  // smaller anchor index, matching graph::internal::BoundedTopK.
  std::size_t filled = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const double v = d2[j];
    if (filled == s && v >= weights[s - 1]) continue;
    std::size_t q = filled < s ? filled : s - 1;
    while (q > 0 && weights[q - 1] > v) {
      weights[q] = weights[q - 1];
      cols[q] = cols[q - 1];
      --q;
    }
    weights[q] = v;
    cols[q] = j;
    if (filled < s) ++filled;
  }
  // Self-tuning bandwidth = the worst kept distance; weights accumulate in
  // rank order (a fixed order per row, independent of anchor indices).
  const double sigma2 = std::max(weights[s - 1], 1e-300);
  double sum = 0.0;
  for (std::size_t r = 0; r < s; ++r) {
    weights[r] = std::exp(-weights[r] / sigma2);
    sum += weights[r];
  }
  const double inv = 1.0 / sum;  // sum >= exp(-1) by construction
  for (std::size_t r = 0; r < s; ++r) weights[r] *= inv;
  // Insertion sort to ascending anchor order (s is small), weights ride
  // along — the CSR column invariant and the accumulation order of the
  // coordinate map.
  for (std::size_t r = 1; r < s; ++r) {
    const std::size_t cr = cols[r];
    const double wr = weights[r];
    std::size_t q = r;
    while (q > 0 && cols[q - 1] > cr) {
      cols[q] = cols[q - 1];
      weights[q] = weights[q - 1];
      --q;
    }
    cols[q] = cr;
    weights[q] = wr;
  }
}

void BlockedVecMatAdd(const double* u, const la::Matrix& a, double* out) {
  const std::size_t p = a.rows();
  const std::size_t c = a.cols();
  for (std::size_t kk = 0; kk < p; kk += kGemmKcBlock) {
    const std::size_t kcb = std::min(kGemmKcBlock, p - kk);
    for (std::size_t j = 0; j < c; ++j) {
      double partial = 0.0;
      for (std::size_t q = 0; q < kcb; ++q) {
        partial += u[kk + q] * a(kk + q, j);
      }
      out[j] += partial;
    }
  }
}

std::size_t RowArgMax(const double* scores, std::size_t c) {
  std::size_t best = 0;
  for (std::size_t j = 1; j < c; ++j) {
    if (scores[j] > scores[best]) best = j;
  }
  return best;
}

}  // namespace umvsc::mvsc::assign
