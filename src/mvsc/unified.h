#ifndef UMVSC_MVSC_UNIFIED_H_
#define UMVSC_MVSC_UNIFIED_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/anchors.h"
#include "la/lanczos.h"
#include "la/matrix.h"
#include "mvsc/graphs.h"
#include "mvsc/solve_hooks.h"

namespace umvsc::mvsc {

/// How per-view smoothness h_v = Tr(Fᵀ L_v F) enters the weight update.
enum class SmoothnessNormalization {
  /// Raw h_v (the textbook update). Vulnerable to intrinsically fragmented
  /// graphs: a view whose Laplacian has many near-zero eigenvalues looks
  /// spuriously "smooth" and soaks up weight even when uninformative.
  kAbsolute,
  /// Excess smoothness h_v − ĉ_v, with ĉ_v the sum of L_v's c smallest
  /// eigenvalues (that view's own optimum). Since ĉ_v is constant in F,
  /// the F-step is unchanged; only the α-step becomes scale-invariant
  /// across views. Markedly more robust to corrupted or degenerate views.
  kExcess,
};

/// View-weighting scheme of the unified model.
enum class ViewWeighting {
  /// α_v^γ coefficients with the closed-form update
  /// α_v ∝ h_v^{1/(1−γ)}, h_v = Tr(Fᵀ L_v F); γ > 1 controls smoothness.
  kGammaPower,
  /// Parameter-free AMGL self-weighting w_v = 1/(2√h_v).
  kAmgl,
  /// Fixed uniform weights (ablation).
  kUniform,
};

/// The large-scale anchor mode of the unified solver (off by default: the
/// exact path is untouched — byte-identical results — whenever `enabled` is
/// false). When enabled, Run(dataset) replaces the O(n²) per-view graphs
/// with m-anchor bipartite affinities and runs every eigensolve and every
/// F/R/α update in the reduced space they span (see anchor_unified.h);
/// per-iteration work linear in n remains only at label-assignment time.
struct UnifiedAnchorOptions {
  /// Master switch. Requires the feature-level Run(dataset) entry point —
  /// Run(graphs) has no features to select anchors from and reports
  /// InvalidArgument when this is set.
  bool enabled = false;
  /// Anchors m per view (m ≪ n; cost grows as O(n·m·d + n·s²) per view).
  std::size_t num_anchors = 256;
  /// Nonzeros per bipartite row s (graph::AnchorGraphOptions).
  std::size_t anchor_neighbors = 5;
  /// Reduced directions kept per view; 0 means num_clusters + 2 (a small
  /// cushion beyond c lets the joint basis disambiguate clusters that one
  /// view alone blurs).
  std::size_t basis_per_view = 0;
  graph::AnchorSelection selection = graph::AnchorSelection::kKmeansppRefine;
  /// Row-tile height of the bipartite builder panels (memory knob only;
  /// results are bitwise identical at every setting).
  std::size_t tile_rows = 128;
};

/// Options for the unified one-stage multi-view spectral clustering solver.
struct UnifiedOptions {
  std::size_t num_clusters = 2;
  /// Weight of the discretization term β·‖Ŷ − F·R‖²_F.
  double beta = 1.0;
  /// Exponent of the γ-power view weighting (> 1). Ignored by other modes.
  double gamma = 2.0;
  ViewWeighting weighting = ViewWeighting::kGammaPower;
  SmoothnessNormalization smoothness = SmoothnessNormalization::kAbsolute;
  /// Outer alternating iterations.
  std::size_t max_iterations = 50;
  /// Relative objective-change stopping threshold.
  double tolerance = 1e-6;
  /// Column-normalize the indicator (scaled indicator Ŷ) in the
  /// discretization term, as in Yu–Shi.
  bool scale_indicator = true;
  /// Inner GPI iterations for the F-step.
  std::size_t gpi_iterations = 30;
  /// Warm-start alternations (fresh eigensolve ↔ weight update, no discrete
  /// coupling) before the joint loop. Without this, a bad uniform-average
  /// embedding can lock the Y↔F alternation into a poor fixed point.
  std::size_t init_alternations = 4;
  /// Seed each init-alternation eigensolve from the previous alternation's
  /// embedding (la::LanczosOptions::warm_start). The combined Laplacian
  /// changes only as much as the view weights do between alternations, so
  /// the previous eigenvectors nearly span the new eigenspace and Lanczos
  /// converges in a smaller subspace — fewer matvecs, same clustering.
  /// Disable to reproduce fully cold solves (e.g. for A/B measurements).
  bool warm_start = true;
  /// Eigensolver routing for every eigensolve of the run (spectral floors
  /// + init alternations). kAuto (the default) lets the measured
  /// la::EigensolvePolicy pick the faster path per shape: the block solver
  /// iterates on n × c panels — one SpMM per operator application instead
  /// of c memory-bound matvecs, warm starts entering the first panel
  /// column-per-column — while the single-vector solver's tridiagonal
  /// Rayleigh–Ritz is cheaper at small c. Force either path to A/B them;
  /// both yield the same eigenpairs to solver tolerance (identical
  /// partitions, ARI 1.0 — la_policy_test pins this).
  la::EigensolveMode block_lanczos = la::EigensolveMode::kAuto;
  /// Large-scale anchor mode (disabled by default — see UnifiedAnchorOptions).
  UnifiedAnchorOptions anchors;
  /// Executor substrate hooks (solve_hooks.h): an optional cross-job small-
  /// solve batcher and reusable scratch. Defaults to the plain serial path;
  /// with hooks installed, results stay bitwise identical (the hooks'
  /// determinism contract), only allocation and scheduling change. The
  /// pointers are non-owning and must outlive the Run() call.
  SolveHooks hooks;
  std::uint64_t seed = 0;
};

/// Result of the unified solver. The labels come directly from the learned
/// discrete indicator — no K-means anywhere.
struct UnifiedResult {
  std::vector<std::size_t> labels;
  la::Matrix indicator;       ///< learned discrete Y (n × c, one 1 per row)
  la::Matrix embedding;       ///< continuous F (n × c, orthonormal columns)
  la::Matrix rotation;        ///< learned rotation R (c × c, orthogonal)
  std::vector<double> view_weights;      ///< final α (normalized to sum 1)
  std::vector<double> objective_trace;   ///< objective after each outer iter
  /// Weighted smoothness Σ_v α_v^γ·Tr(FᵀL_vF) after each warm-start
  /// alternation (the joint objective is undefined before Y and R exist).
  std::vector<double> warmup_trace;
  std::size_t iterations = 0;
  bool converged = false;
  /// Total Lanczos operator applications (matvecs) across every eigensolve
  /// of the run — spectral floors plus all init alternations. Warm starting
  /// shows up here as a drop at unchanged clustering output.
  std::size_t lanczos_matvecs = 0;
};

/// The paper's unified one-stage multi-view spectral clustering:
///
///   min_{F,R,Y,α}  Σ_v α_v^γ·Tr(Fᵀ L_v F) + β·‖Ŷ − F·R‖²_F
///   s.t. FᵀF = I, RᵀR = I, Y ∈ Ind, α ∈ Δ_V,
///
/// solved by four-block alternating minimization (GPI F-step, Procrustes
/// R-step, row-argmax Y-step, closed-form α-step). See DESIGN.md for the
/// derivation and provenance of each block.
class UnifiedMVSC {
 public:
  explicit UnifiedMVSC(UnifiedOptions options) : options_(options) {}

  /// Runs the solver on prebuilt per-view graphs (the shared-graph protocol
  /// of the benchmark harness). The per-view smoothness terms Tr(FᵀL_vF),
  /// the spectral floors, and the objective evaluation fan out across views
  /// on the global thread pool (common/parallel.h); given a fixed seed, the
  /// labels, embedding, and objective trace are bitwise identical at every
  /// UMVSC_NUM_THREADS setting. Run() is const and thread-safe: concurrent
  /// calls on different graphs simply share the pool.
  StatusOr<UnifiedResult> Run(const MultiViewGraphs& graphs) const;

  /// Convenience: builds graphs from raw features, then runs. When
  /// options().anchors.enabled is set, this routes to the reduced anchor
  /// path instead (SolveUnifiedAnchors in anchor_unified.h) — near-linear
  /// in n — honoring graph_options.standardize for the feature
  /// preprocessing; the remaining graph options are exact-path-only.
  StatusOr<UnifiedResult> Run(const data::MultiViewDataset& dataset,
                              const GraphOptions& graph_options = {}) const;

  const UnifiedOptions& options() const { return options_; }

 private:
  UnifiedOptions options_;
};

/// The solver's objective value for a given state — exposed for tests of
/// the monotone-descent property and for the convergence-figure bench.
double UnifiedObjective(const std::vector<la::CsrMatrix>& laplacians,
                        const std::vector<double>& weight_coefficients,
                        double beta, const la::Matrix& f,
                        const la::Matrix& rotation,
                        const la::Matrix& indicator_scaled);

}  // namespace umvsc::mvsc

#endif  // UMVSC_MVSC_UNIFIED_H_
