#include "mvsc/mlan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "cluster/kmeans.h"
#include "graph/connectivity.h"
#include "graph/distance.h"
#include "graph/laplacian.h"
#include "la/lanczos.h"
#include "la/ops.h"
#include "la/simplex.h"
#include "la/sparse.h"

namespace umvsc::mvsc {

namespace {

// Per-row candidate neighborhoods: indices of the k+1 nearest points under
// the uniformly averaged view distances (candidate sets stay fixed across
// iterations, as in the reference implementation).
std::vector<std::vector<std::size_t>> CandidateSets(
    const la::Matrix& mean_dist, std::size_t k) {
  const std::size_t n = mean_dist.rows();
  std::vector<std::vector<std::size_t>> candidates(n);
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < n; ++i) {
    idx.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) idx.push_back(j);
    }
    std::partial_sort(idx.begin(), idx.begin() + (k + 1), idx.end(),
                      [&](std::size_t a, std::size_t b) {
                        return mean_dist(i, a) < mean_dist(i, b);
                      });
    candidates[i].assign(idx.begin(), idx.begin() + (k + 1));
  }
  return candidates;
}

}  // namespace

StatusOr<MlanResult> Mlan(const data::MultiViewDataset& dataset,
                          const MlanOptions& options) {
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  const std::size_t n = dataset.NumSamples();
  const std::size_t num_views = dataset.NumViews();
  const std::size_t c = options.num_clusters;
  if (c < 2 || c >= n) {
    return Status::InvalidArgument("MLAN requires 2 <= c < n");
  }
  if (options.knn < 1 || options.knn + 2 >= n) {
    return Status::InvalidArgument("MLAN requires 1 <= knn < n - 2");
  }

  // Per-view squared distances on standardized features.
  data::MultiViewDataset working = dataset;
  working.StandardizeViews();
  std::vector<la::Matrix> dists;
  dists.reserve(num_views);
  la::Matrix mean_dist(n, n);
  for (const la::Matrix& view : working.views) {
    la::Matrix d = graph::PairwiseSquaredDistances(view);
    // Normalize each view's distance scale so no view dominates by units.
    double scale = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) scale += d.data()[i];
    scale /= static_cast<double>(d.size());
    if (scale > 0.0) d.Scale(1.0 / scale);
    mean_dist.Add(d, 1.0 / static_cast<double>(num_views));
    dists.push_back(std::move(d));
  }

  const std::size_t k = options.knn;
  const std::vector<std::vector<std::size_t>> candidates =
      CandidateSets(mean_dist, k);

  // γ from the CAN closed form on the mean distances: the value that makes
  // each row's simplex solution have exactly k nonzeros, averaged over rows.
  double gamma = 0.0;
  {
    std::vector<double> row;
    for (std::size_t i = 0; i < n; ++i) {
      row.clear();
      for (std::size_t j : candidates[i]) row.push_back(mean_dist(i, j));
      std::sort(row.begin(), row.end());
      double sum_k = 0.0;
      for (std::size_t j = 0; j < k; ++j) sum_k += row[j];
      gamma += 0.5 * (static_cast<double>(k) * row[k] - sum_k);
    }
    gamma /= static_cast<double>(n);
    gamma = std::max(gamma, 1e-12);
  }

  std::vector<double> w(num_views, 1.0 / static_cast<double>(num_views));
  double lambda = gamma;  // the reference code starts λ at γ
  // λ is adapted multiplicatively toward rank(L_S) = n − c, but clamped:
  // letting it grow unboundedly makes the embedding term dominate the data
  // term and the graph collapses into degenerate splits (tiny shaved-off
  // components that satisfy the rank test without matching any cluster).
  const double lambda_min = gamma / 8.0;
  const double lambda_max = gamma * 8.0;
  la::Matrix s(n, n);
  la::Matrix prev_s;
  la::Matrix f;
  la::LanczosOptions lanczos;
  lanczos.seed = options.seed + 59;
  lanczos.max_subspace = std::min(n, std::max<std::size_t>(12 * c + 100, 250));
  lanczos.tolerance = 3e-6;

  std::size_t iterations = 0;
  bool exact_components = false;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // --- S-step: per row, project the negative combined cost onto the
    // simplex over the candidate set:
    //   s_i = Π_Δ( −(Σ_v w_v d_i^v + λ·f_i) / (2γ) ).
    s.Fill(0.0);
    for (std::size_t i = 0; i < n; ++i) {
      la::Vector cost(candidates[i].size());
      for (std::size_t a = 0; a < candidates[i].size(); ++a) {
        const std::size_t j = candidates[i][a];
        double combined = 0.0;
        for (std::size_t v = 0; v < num_views; ++v) {
          combined += w[v] * dists[v](i, j);
        }
        if (!f.empty()) {
          double fd = 0.0;
          for (std::size_t p = 0; p < c; ++p) {
            const double diff = f(i, p) - f(j, p);
            fd += diff * diff;
          }
          combined += lambda * fd;
        }
        cost[a] = -combined / (2.0 * gamma);
      }
      la::Vector row = la::ProjectToSimplex(cost);
      for (std::size_t a = 0; a < candidates[i].size(); ++a) {
        s(i, candidates[i][a]) = row[a];
      }
    }

    // --- F-step: smallest c eigenvectors of the Laplacian of (S + Sᵀ)/2.
    la::Matrix sym = s;
    sym.Symmetrize();
    la::CsrMatrix sparse_s = la::CsrMatrix::FromDense(sym, 1e-14);
    StatusOr<la::CsrMatrix> lap =
        graph::Laplacian(sparse_s, graph::LaplacianKind::kUnnormalized, 1e-6);
    if (!lap.ok()) return lap.status();
    // Unnormalized Laplacian spectral bound: Gershgorin = 2·max degree.
    double bound = 0.0;
    la::Vector degrees = sparse_s.RowSums();
    for (std::size_t i = 0; i < n; ++i) bound = std::max(bound, degrees[i]);
    bound = 2.0 * bound + 1e-6;
    // c+1 smallest pairs: the (c+1)-th eigenvalue drives the λ adaptation.
    StatusOr<la::SymEigenResult> eig =
        la::LanczosSmallest(*lap, c + 1, bound, lanczos);
    if (!eig.ok()) return eig.status();
    f = eig->eigenvectors.LeftCols(c);

    // --- w-step: parameter-free self-weighting.
    for (std::size_t v = 0; v < num_views; ++v) {
      double fit = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j : candidates[i]) {
          fit += dists[v](i, j) * s(i, j);
        }
      }
      w[v] = 0.5 / std::sqrt(std::max(fit, 1e-12));
    }

    // --- λ adaptation toward rank(L_S) = n − c: too few zero eigenvalues
    // (graph too connected) → grow λ; too many → shrink.
    const double zero_tol = 1e-8 * std::max(1.0, bound);
    std::size_t zeros = 0;
    for (std::size_t j = 0; j < c + 1; ++j) {
      if (eig->eigenvalues[j] <= zero_tol) ++zeros;
    }
    iterations = iter + 1;
    if (zeros == c) {
      exact_components = true;
      break;
    }
    if (zeros < c) {
      lambda = std::min(lambda * 2.0, lambda_max);
    } else {
      lambda = std::max(lambda / 2.0, lambda_min);
    }
    // Stop when the learned graph stalls.
    if (!prev_s.empty() &&
        la::Add(s, prev_s, -1.0).FrobeniusNorm() <=
            1e-6 * std::max(1.0, s.FrobeniusNorm())) {
      break;
    }
    prev_s = s;
  }

  MlanResult out;
  la::Matrix sym = s;
  sym.Symmetrize();
  if (exact_components) {
    // The c components of the learned graph are the clusters.
    la::CsrMatrix sparse_s = la::CsrMatrix::FromDense(sym, 1e-12);
    std::vector<std::size_t> component = graph::ConnectedComponents(sparse_s);
    std::size_t num_components = 0;
    for (std::size_t comp : component) {
      num_components = std::max(num_components, comp + 1);
    }
    if (num_components == c) {
      out.labels = std::move(component);
    } else {
      exact_components = false;  // numerical rank vs. topology mismatch
    }
  }
  if (!exact_components) {
    // Fall back to K-means on the row-normalized embedding.
    la::Matrix normalized = f;
    for (std::size_t i = 0; i < n; ++i) {
      double norm = 0.0;
      for (std::size_t j = 0; j < c; ++j) {
        norm += normalized(i, j) * normalized(i, j);
      }
      norm = std::sqrt(norm);
      if (norm > 0.0) {
        for (std::size_t j = 0; j < c; ++j) normalized(i, j) /= norm;
      }
    }
    cluster::KMeansOptions km;
    km.num_clusters = c;
    km.restarts = options.kmeans_restarts;
    km.seed = options.seed;
    StatusOr<cluster::KMeansResult> clustered = cluster::KMeans(normalized, km);
    if (!clustered.ok()) return clustered.status();
    out.labels = std::move(clustered->labels);
  }

  out.learned_graph = std::move(sym);
  out.embedding = std::move(f);
  out.iterations = iterations;
  out.exact_components = exact_components;
  double total = 0.0;
  for (double weight : w) total += weight;
  out.view_weights.resize(num_views);
  for (std::size_t v = 0; v < num_views; ++v) {
    out.view_weights[v] = total > 0.0 ? w[v] / total : 1.0 / num_views;
  }
  return out;
}

}  // namespace umvsc::mvsc
