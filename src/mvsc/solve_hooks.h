#ifndef UMVSC_MVSC_SOLVE_HOOKS_H_
#define UMVSC_MVSC_SOLVE_HOOKS_H_

#include "la/batched.h"
#include "la/matrix.h"

namespace umvsc::mvsc {

/// Reusable per-solve temporaries for the joint alternation loop. Every
/// outer iteration recomputes the same-shaped products (B = β·Ŷ·Rᵀ, F·R,
/// FᵀŶ); routing them through one scratch block turns ~3 allocations per
/// iteration into none after the first. A job executor hands each job its
/// own scratch (arena-backed reuse across the jobs a worker runs); solves
/// without one allocate locally, same results. Not thread-safe — one
/// scratch belongs to exactly one solve at a time.
struct SolveScratch {
  la::Matrix b;    ///< n × c right-hand side of the F-step GPI
  la::Matrix fr;   ///< n × c rotated embedding for the Y-step argmax
  la::Matrix ctc;  ///< c × c Procrustes input FᵀŶ

  /// Shapes `m` to r × c, reusing storage when the shape already matches
  /// (the steady state after iteration one; contents are overwritten by
  /// the Into-style producers, so no zeroing here).
  static la::Matrix& Ensure(la::Matrix& m, std::size_t r, std::size_t c) {
    if (m.rows() != r || m.cols() != c) m = la::Matrix(r, c);
    return m;
  }
};

/// Optional substrate hooks threaded into the unified/reduced solvers by
/// the job executor (exec/executor.h). Both pointers are non-owning and
/// default to null — a default-constructed SolveHooks is the plain serial
/// path, byte-identical to the pre-hook solver.
///
/// Determinism contract: a batcher must produce results bitwise identical
/// to the serial kernels it replaces (la::SmallSolveBatcher requires this),
/// and scratch only changes where results are stored, never their values —
/// so hooked and unhooked solves agree bitwise, as do solves under any
/// batch composition.
struct SolveHooks {
  /// Cross-job rendezvous for small dense solves (c × c Procrustes, dense
  /// symmetric eigensolves). Null = call the serial kernel directly.
  la::SmallSolveBatcher* batcher = nullptr;
  /// Reusable temporaries for the alternation loop. Null = allocate per
  /// iteration as before.
  SolveScratch* scratch = nullptr;
};

}  // namespace umvsc::mvsc

#endif  // UMVSC_MVSC_SOLVE_HOOKS_H_
