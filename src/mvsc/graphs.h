#ifndef UMVSC_MVSC_GRAPHS_H_
#define UMVSC_MVSC_GRAPHS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/incomplete.h"
#include "graph/knn_graph.h"
#include "la/sparse.h"

namespace umvsc::mvsc {

/// How per-view similarity graphs are constructed from raw features. Every
/// multi-view method in this library consumes the same MultiViewGraphs, so
/// comparisons never mix graph constructions.
struct GraphOptions {
  /// Neighbors for both the self-tuning bandwidth and the kNN sparsifier.
  std::size_t knn = 10;
  /// Symmetrization of the directed kNN selection.
  graph::KnnSymmetrization symmetrization = graph::KnnSymmetrization::kUnion;
  /// Standardize each view's features before computing distances.
  bool standardize = true;
  /// Use the adaptive-neighbor (CAN) construction instead of the
  /// self-tuning Gaussian kernel.
  bool adaptive_neighbors = false;
  /// Bridge disconnected graph components with their shortest
  /// inter-component edge (weakest existing weight), so every per-view
  /// Laplacian has exactly one zero eigenvalue and spectral embeddings are
  /// well defined. Matches scikit-learn's kNN-graph connectivity fix.
  bool bridge_components = true;
};

/// Per-view graphs shared by all methods: symmetric sparse affinities and
/// the matching symmetric-normalized Laplacians (spectrum in [0, 2]).
struct MultiViewGraphs {
  std::vector<la::CsrMatrix> affinities;
  std::vector<la::CsrMatrix> laplacians;

  std::size_t NumViews() const { return affinities.size(); }
  std::size_t NumSamples() const {
    return affinities.empty() ? 0 : affinities.front().rows();
  }
};

/// Builds per-view graphs: (standardize →) pairwise squared distances →
/// self-tuning Gaussian kernel (or adaptive neighbors) → kNN sparsification
/// → symmetric-normalized Laplacian. Views are fanned out across the global
/// thread pool (single-view calls instead parallelize inside the distance
/// and kNN kernels); output is bitwise identical at every thread count.
StatusOr<MultiViewGraphs> BuildGraphs(const data::MultiViewDataset& dataset,
                                      const GraphOptions& options = {});

/// Builds a single graph+Laplacian from one feature matrix with the same
/// recipe (used by the feature-concatenation baseline).
StatusOr<MultiViewGraphs> BuildSingleGraph(const la::Matrix& features,
                                           const GraphOptions& options = {});

/// Mass-renormalized Laplacian combination
///   L̃ = D^{−1/2}·(Σ_v c_v·L_v)·D^{−1/2},  D = diag(Σ_v c_v·diag(L_v)),
/// used for the combined-graph eigensolves. With complete views every
/// normalized Laplacian has a unit diagonal, so D is a multiple of the
/// identity and the eigenvectors are EXACTLY those of the plain weighted
/// sum. With incomplete views (zero Laplacian rows for absent samples) the
/// renormalization equalizes per-sample mass, keeping the spectrum in
/// [0, 2] and the bottom eigengap resolvable — the plain sum develops a
/// cluster of near-zero eigenvalues at poorly-covered samples that stalls
/// any iterative eigensolver. Zero-mass rows (a sample absent everywhere,
/// excluded by ViewPresence::Validate) would become zero rows.
la::CsrMatrix MassNormalizedCombination(
    const std::vector<la::CsrMatrix>& laplacians,
    const std::vector<double>& coefficients);

/// As above, but starting from an already-combined Σ_v c_v·L_v — the
/// per-iteration path of solvers that hold a la::CsrCombiner over a fixed
/// Laplacian set and only refresh the values each outer iteration.
la::CsrMatrix MassNormalizedCombination(const la::CsrMatrix& combined);

/// Incomplete (partial) multi-view graphs: each view's graph is built only
/// over its OBSERVED samples; absent samples become fully isolated vertices
/// with ZERO Laplacian rows, i.e. the view places no constraint on them and
/// contributes no spurious trace. Spectra stay within [0, 2], so every
/// solver in this library runs unchanged on the result — the per-view
/// weights absorb the differing observation counts. The presence mask must
/// validate against the dataset.
StatusOr<MultiViewGraphs> BuildGraphsIncomplete(
    const data::MultiViewDataset& dataset, const data::ViewPresence& presence,
    const GraphOptions& options = {});

}  // namespace umvsc::mvsc

#endif  // UMVSC_MVSC_GRAPHS_H_
