#include "mvsc/mvkkm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kernel_kmeans.h"
#include "graph/distance.h"
#include "graph/kernels.h"
#include "la/ops.h"

namespace umvsc::mvsc {

namespace {

// Kernel K-means objective of one view's Gram matrix under fixed labels:
// Σ_c [ Σ_{i∈c} K_ii − (Σ_{i,j∈c} K_ij)/|c| ].
double ViewObjective(const la::Matrix& gram,
                     const std::vector<std::size_t>& labels, std::size_t k) {
  std::vector<double> within(k, 0.0);
  std::vector<double> self(k, 0.0);
  std::vector<double> counts(k, 0.0);
  const std::size_t n = gram.rows();
  for (std::size_t i = 0; i < n; ++i) {
    self[labels[i]] += gram(i, i);
    counts[labels[i]] += 1.0;
    const double* row = gram.RowPtr(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (labels[j] == labels[i]) within[labels[i]] += row[j];
    }
  }
  double objective = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] > 0.0) objective += self[c] - within[c] / counts[c];
  }
  return std::max(objective, 1e-12);
}

}  // namespace

StatusOr<MvkkmResult> MultiViewKernelKMeans(const data::MultiViewDataset& dataset,
                                            const MvkkmOptions& options) {
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  const std::size_t n = dataset.NumSamples();
  const std::size_t num_views = dataset.NumViews();
  const std::size_t c = options.num_clusters;
  if (c < 2 || c > n) {
    return Status::InvalidArgument("MVKKM requires 2 <= c <= n");
  }
  if (options.p <= 1.0) {
    return Status::InvalidArgument("MVKKM requires exponent p > 1");
  }

  // Per-view Gaussian Grams with the median-heuristic bandwidth; unit
  // diagonal keeps each Gram PSD.
  data::MultiViewDataset working = dataset;
  working.StandardizeViews();
  std::vector<la::Matrix> grams;
  grams.reserve(num_views);
  for (const la::Matrix& view : working.views) {
    la::Matrix sq = graph::PairwiseSquaredDistances(view);
    StatusOr<double> sigma = graph::MedianHeuristicSigma(sq);
    if (!sigma.ok()) return sigma.status();
    StatusOr<la::Matrix> kernel = graph::GaussianKernel(sq, *sigma);
    if (!kernel.ok()) return kernel.status();
    for (std::size_t i = 0; i < n; ++i) (*kernel)(i, i) = 1.0;
    grams.push_back(std::move(*kernel));
  }

  std::vector<double> weights(num_views, 1.0 / static_cast<double>(num_views));
  MvkkmResult out;
  double prev_obj = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Fused Gram with the current weights.
    la::Matrix fused(n, n);
    for (std::size_t v = 0; v < num_views; ++v) {
      fused.Add(grams[v], std::pow(weights[v], options.p));
    }
    cluster::KernelKMeansOptions kkm;
    kkm.num_clusters = c;
    kkm.restarts = options.kernel_kmeans_restarts;
    kkm.seed = options.seed + iter;
    StatusOr<cluster::KernelKMeansResult> clustered =
        cluster::KernelKMeans(fused, kkm);
    if (!clustered.ok()) return clustered.status();
    out.labels = std::move(clustered->labels);
    out.objective = clustered->objective;
    out.iterations = iter + 1;

    // Closed-form weight update from per-view objectives.
    const double exponent = 1.0 / (1.0 - options.p);
    double total = 0.0;
    std::vector<double> next(num_views);
    for (std::size_t v = 0; v < num_views; ++v) {
      next[v] = std::pow(ViewObjective(grams[v], out.labels, c), exponent);
      total += next[v];
    }
    for (std::size_t v = 0; v < num_views; ++v) weights[v] = next[v] / total;

    if (iter > 0 && std::fabs(prev_obj - out.objective) <=
                        options.tolerance * std::max(prev_obj, 1e-12)) {
      break;
    }
    prev_obj = out.objective;
  }
  out.view_weights = std::move(weights);
  return out;
}

}  // namespace umvsc::mvsc
