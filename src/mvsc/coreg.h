#ifndef UMVSC_MVSC_COREG_H_
#define UMVSC_MVSC_COREG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "mvsc/graphs.h"

namespace umvsc::mvsc {

/// Which co-regularization coupling to use.
enum class CoRegMode {
  /// Each view agrees with a shared consensus embedding (the "centroid"
  /// scheme of Kumar et al.; one extra eigensolve per iteration).
  kCentroid,
  /// Each view agrees with every other view directly (the "pairwise"
  /// scheme; final labels from the concatenated view embeddings).
  kPairwise,
};

/// Options for co-regularized spectral clustering.
struct CoRegOptions {
  std::size_t num_clusters = 2;
  CoRegMode mode = CoRegMode::kCentroid;
  /// Co-regularization strength λ (the paper's default regime is ~0.01–0.1
  /// on normalized kernels; the embeddings here are orthonormal so 0.5 is a
  /// comparable default).
  double lambda = 0.5;
  std::size_t max_iterations = 15;
  double tolerance = 1e-6;
  std::size_t kmeans_restarts = 10;
  std::uint64_t seed = 0;
};

/// Result of co-regularized spectral clustering.
struct CoRegResult {
  std::vector<std::size_t> labels;
  /// Consensus embedding U* (centroid mode only; empty in pairwise mode).
  la::Matrix consensus;
  std::vector<la::Matrix> view_embeddings;
  std::size_t iterations = 0;
};

/// Centroid-based co-regularized spectral clustering (Kumar, Rai & Daumé,
/// NIPS 2011): alternately refresh each view's embedding from the modified
/// operator L_v − λ·U*U*ᵀ (agreement with the consensus lowers the
/// effective Laplacian energy) and the consensus U* from the top
/// eigenvectors of Σ_v U_v U_vᵀ; final labels by K-means on U*.
StatusOr<CoRegResult> CoRegSpectral(const MultiViewGraphs& graphs,
                                    const CoRegOptions& options);

}  // namespace umvsc::mvsc

#endif  // UMVSC_MVSC_COREG_H_
