#ifndef UMVSC_MVSC_ANCHOR_UNIFIED_H_
#define UMVSC_MVSC_ANCHOR_UNIFIED_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "la/matrix.h"
#include "la/vector.h"
#include "mvsc/unified.h"

namespace umvsc::mvsc {

/// Everything needed to extend ONE view of a fitted anchor solve to a new
/// point: standardize with the training statistics, build the s-sparse
/// anchor row z (graph::BuildAnchorAffinity's row rule: s nearest anchors,
/// self-tuning bandwidth = own s-th-nearest squared distance, row
/// normalized), then u_v = z·anchor_map — this view's reduced coordinates.
struct AnchorViewModel {
  /// m × d_v anchor points, in STANDARDIZED feature space.
  la::Matrix anchors;
  /// m × k_v extension map of the per-view anchor embedding.
  la::Matrix anchor_map;
  /// Per-feature standardization of this view (identity when the solve ran
  /// unstandardized).
  la::Vector feature_means;
  la::Vector feature_inv_stds;
};

/// The reduced space and cluster geometry of one anchor-mode solve — the
/// serving-side artifact: assignment of a new point touches only anchors
/// and p-dimensional matrices, never the training rows.
struct AnchorModel {
  std::vector<AnchorViewModel> views;
  /// Nonzeros per bipartite row (the s of every view's extension rule).
  std::size_t anchor_neighbors = 0;
  std::size_t num_clusters = 0;
  /// p' × p mixing map: concatenated per-view reduced coordinates
  /// [u_1 | … | u_V] (p' = Σ k_v) → joint orthonormal basis coordinates.
  la::Matrix mix;
  /// p' × c assignment map, mix·G·R of the final solve: a new point's
  /// cluster is the row-argmax of [u_1 | … | u_V]·assignment — ties keep
  /// the smaller cluster index, matching the training discretization.
  la::Matrix assignment;
};

/// Result of the anchor-mode unified solve: the standard UnifiedResult
/// (labels, n × c embedding/indicator, rotation, weights, traces) plus the
/// model needed for out-of-sample assignment.
struct AnchorUnifiedResult {
  UnifiedResult result;
  AnchorModel model;
};

/// The unified multi-view solver in anchor (reduced-space) form — the
/// large-scale path behind UnifiedOptions::anchors:
///
///   per view: anchors A_v (seeded k-means++/uniform) → bipartite Z_v
///   (n × m, s-sparse) → anchor embedding U_v = Ẑ_v·map_v (n × k_v)
///   joint basis: B = [U_1 | … | U_V]·T, T from the Gram eigendecomposition
///   (rank-deficient directions truncated) — an orthonormal n × p basis,
///   p = Σ k_v (minus truncation)
///   reduced Laplacians: H_v = BᵀL_vB = BᵀB − (Ẑ_vᵀB)ᵀ(Ẑ_vᵀB), p × p with
///   spectrum in [0, 2] — computed in O(n·s·p) without forming L_v
///
/// then the EXACT solver loop of unified.cc restricted to F = B·G: spectral
/// floors, warm-started init alternations, and the alternating G/R/Y/α
/// updates all operate on the p × p reduced Laplacians (same eigensolve
/// dispatchers, same GPI, same α closed form — the blocks of
/// unified_internal.h). Reconstruction to n rows happens ONLY at
/// label-assignment time (the Y-step's row-argmax of B·G·R and the final
/// embedding/indicator), keeping the per-iteration cost O(n·p·c + p²·c)
/// and the whole solve O(n·(m·d + s² + p·c)) — near-linear in n.
///
/// Deterministic end to end: seeded anchor selection, the bitwise-stable
/// bipartite builder, serial reduced accumulations in row order, and the
/// seeded eigensolves make labels and embedding bitwise identical at every
/// thread count and tile size.
///
/// `standardize` applies per-view z-scoring (recorded in the model so new
/// points are mapped with the SAME statistics); pass the same flag
/// GraphOptions::standardize would carry on the exact path. Requires
/// options.anchors.num_anchors < n and 2 <= c <= basis size.
StatusOr<AnchorUnifiedResult> SolveUnifiedAnchors(
    const data::MultiViewDataset& dataset, const UnifiedOptions& options,
    bool standardize = true);

}  // namespace umvsc::mvsc

#endif  // UMVSC_MVSC_ANCHOR_UNIFIED_H_
