#ifndef UMVSC_MVSC_TWO_STAGE_H_
#define UMVSC_MVSC_TWO_STAGE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "mvsc/graphs.h"
#include "mvsc/unified.h"

namespace umvsc::mvsc {

/// Options for the two-stage ablation baseline.
struct TwoStageOptions {
  std::size_t num_clusters = 2;
  /// Same view-weighting choices as the unified model.
  ViewWeighting weighting = ViewWeighting::kGammaPower;
  SmoothnessNormalization smoothness = SmoothnessNormalization::kAbsolute;
  double gamma = 2.0;
  /// Outer weight↔embedding alternations.
  std::size_t max_iterations = 20;
  double tolerance = 1e-6;
  std::size_t kmeans_restarts = 10;
  std::uint64_t seed = 0;
};

/// Result of the two-stage baseline.
struct TwoStageResult {
  std::vector<std::size_t> labels;
  la::Matrix embedding;
  std::vector<double> view_weights;
  std::size_t iterations = 0;
};

/// The two-stage counterpart of UnifiedMVSC and the ablation the paper's
/// abstract argues against: learn the SAME weighted multi-view continuous
/// embedding (alternating α and F, no discretization term), then run
/// K-means on the embedding rows. Any quality gap to UnifiedMVSC on the
/// same graphs is attributable to one-stage discrete optimization.
StatusOr<TwoStageResult> TwoStageMVSC(const MultiViewGraphs& graphs,
                                      const TwoStageOptions& options);

}  // namespace umvsc::mvsc

#endif  // UMVSC_MVSC_TWO_STAGE_H_
