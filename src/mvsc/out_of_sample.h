#ifndef UMVSC_MVSC_OUT_OF_SAMPLE_H_
#define UMVSC_MVSC_OUT_OF_SAMPLE_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "la/matrix.h"
#include "mvsc/anchor_unified.h"

namespace umvsc::serve {
class ModelSerializer;  // serve/model_io.h — persists OutOfSampleModel
}  // namespace umvsc::serve

namespace umvsc::mvsc {

/// Options for the out-of-sample extension.
struct OutOfSampleOptions {
  /// Neighbors used for both the adaptive bandwidth and the vote.
  std::size_t knn = 10;
};

/// Out-of-sample extension of a fitted multi-view clustering: assigns NEW
/// points to the learned clusters without re-running the solver.
///
/// Mechanism (the standard graph-transduction recipe): the model stores the
/// standardization parameters, the training features, the learned view
/// weights α, and the training labels. A new point is connected to its k
/// nearest training points per view with a self-tuning Gaussian affinity,
/// the per-view affinities are fused with α, and the point takes the
/// cluster with the largest fused affinity mass.
class OutOfSampleModel {
 public:
  /// Fits the model from the training dataset, the labels produced by any
  /// solver in this library, and the learned view weights (pass uniform
  /// weights for weightless baselines). Training features are standardized
  /// internally; new points are mapped with the SAME statistics.
  static StatusOr<OutOfSampleModel> Fit(const data::MultiViewDataset& training,
                                        const std::vector<std::size_t>& labels,
                                        const std::vector<double>& view_weights,
                                        const OutOfSampleOptions& options = {});

  /// Fits the model from a completed anchor-mode solve
  /// (SolveUnifiedAnchors). Prediction then runs the nearest-anchor
  /// extension: per view, the new point builds its s-sparse anchor row
  /// (the exact row rule of graph::BuildAnchorAffinity — s nearest anchors,
  /// self-tuning bandwidth, ties to the smaller anchor index), maps it into
  /// the reduced space through anchor_map, and the concatenated coordinates
  /// score against AnchorModel::assignment; ties in the final row-argmax
  /// keep the smaller cluster index, matching the training discretization.
  /// O(Σ_v m·d_v + p'·c) per point — anchors only, NEVER the training rows —
  /// so a training point re-predicted through this path reproduces its
  /// training label (the anchor path assigns labels through the same chain;
  /// mvsc_out_of_sample_test pins this).
  ///
  /// Every arithmetic step runs on the shared serving primitives of
  /// mvsc/anchor_assign.h (Gram-expansion distances on the GemmAdd kc grid,
  /// the BuildAnchorAffinity row rule, ascending-column coordinate
  /// accumulation, kc-blocked scoring), which is what makes the batched
  /// path (serve::BatchAssigner) bitwise identical to this one.
  static StatusOr<OutOfSampleModel> FitAnchor(AnchorModel model);

  /// Predicts cluster ids for new points given as a multi-view batch with
  /// the same number and dimensionality of views as the training data
  /// (labels in the batch, if any, are ignored).
  StatusOr<std::vector<std::size_t>> Predict(
      const data::MultiViewDataset& batch) const;

  std::size_t num_clusters() const { return num_clusters_; }

  /// The anchor serving model, when this model came from FitAnchor (the
  /// batched serve path reads it); nullopt for exact-path models.
  const std::optional<AnchorModel>& anchor_model() const {
    return anchor_model_;
  }

  /// Per-view squared norms of the anchor rows, cached by FitAnchor for the
  /// Gram-expansion serving distances. Parallel to anchor_model()->views.
  const std::vector<la::Vector>& anchor_sq_norms() const {
    return anchor_sq_norms_;
  }

 private:
  /// serve::ModelSerializer reconstructs exact-path models field by field
  /// when loading from disk (anchor-path models re-enter through FitAnchor).
  friend class ::umvsc::serve::ModelSerializer;

  OutOfSampleModel() = default;

  OutOfSampleOptions options_;
  std::size_t num_clusters_ = 0;
  std::vector<std::size_t> labels_;
  std::vector<double> view_weights_;
  /// Standardized training views.
  std::vector<la::Matrix> views_;
  /// Per-view, per-feature standardization parameters.
  std::vector<la::Vector> feature_means_;
  std::vector<la::Vector> feature_inv_stds_;
  /// Per-view self-tuning bandwidth of each training point (k-NN distance).
  std::vector<la::Vector> train_scales_;
  /// When set, Predict routes through the anchor extension instead of the
  /// training-point affinity vote (the O(n)-free serving path).
  std::optional<AnchorModel> anchor_model_;
  /// ‖a_j‖² per view (graph::RowSquaredNorms convention), derived from
  /// anchor_model_ at FitAnchor time — never serialized.
  std::vector<la::Vector> anchor_sq_norms_;
};

}  // namespace umvsc::mvsc

#endif  // UMVSC_MVSC_OUT_OF_SAMPLE_H_
