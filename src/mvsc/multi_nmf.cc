#include "mvsc/multi_nmf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "la/ops.h"

namespace umvsc::mvsc {

namespace {

constexpr double kEps = 1e-12;

// Shifts each feature to be nonnegative (subtract its minimum) and scales
// the view to unit Frobenius norm so λ is comparable across views.
la::Matrix NonnegativeView(const la::Matrix& view) {
  la::Matrix x = view;
  for (std::size_t j = 0; j < x.cols(); ++j) {
    double min_value = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < x.rows(); ++i) {
      min_value = std::min(min_value, x(i, j));
    }
    for (std::size_t i = 0; i < x.rows(); ++i) x(i, j) -= min_value;
  }
  const double norm = x.FrobeniusNorm();
  if (norm > 0.0) x.Scale(1.0 / norm);
  return x;
}

}  // namespace

StatusOr<MultiNmfResult> MultiViewNmf(const data::MultiViewDataset& dataset,
                                      const MultiNmfOptions& options) {
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  const std::size_t n = dataset.NumSamples();
  const std::size_t c = options.num_clusters;
  if (c < 2 || c > n) {
    return Status::InvalidArgument("MultiViewNmf requires 2 <= c <= n");
  }
  if (options.lambda < 0.0) {
    return Status::InvalidArgument("lambda must be nonnegative");
  }

  // A rank-c factorization needs at least c features; views too thin to
  // factorize are skipped (they could not carry c-cluster structure in an
  // NMF representation anyway). At least one view must survive.
  std::vector<la::Matrix> x;
  x.reserve(dataset.NumViews());
  for (const la::Matrix& view : dataset.views) {
    if (view.cols() >= c) x.push_back(NonnegativeView(view));
  }
  if (x.empty()) {
    return Status::InvalidArgument(
        "no view has at least num_clusters features for MultiViewNmf");
  }

  const std::size_t active_views = x.size();
  Rng rng(options.seed);
  std::vector<la::Matrix> w(active_views), h(active_views);
  for (std::size_t v = 0; v < active_views; ++v) {
    w[v] = la::Matrix::RandomUniform(n, c, rng, 0.1, 1.0);
    h[v] = la::Matrix::RandomUniform(c, x[v].cols(), rng, 0.1, 1.0);
  }
  la::Matrix consensus(n, c, 0.5);

  auto objective = [&]() {
    double obj = 0.0;
    for (std::size_t v = 0; v < active_views; ++v) {
      const double fit =
          la::Add(x[v], la::MatMul(w[v], h[v]), -1.0).FrobeniusNorm();
      const double agree = la::Add(w[v], consensus, -1.0).FrobeniusNorm();
      obj += fit * fit + options.lambda * agree * agree;
    }
    return obj;
  };

  MultiNmfResult out;
  double prev_obj = std::numeric_limits<double>::infinity();
  std::size_t iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    for (std::size_t v = 0; v < active_views; ++v) {
      // H_v ← H_v ∘ (W_vᵀX_v) ⊘ (W_vᵀW_v·H_v).
      la::Matrix wtx = la::MatTMul(w[v], x[v]);
      la::Matrix wtwh = la::MatMul(la::Gram(w[v]), h[v]);
      for (std::size_t i = 0; i < h[v].size(); ++i) {
        h[v].data()[i] *= wtx.data()[i] / (wtwh.data()[i] + kEps);
      }
      // W_v ← W_v ∘ (X_vH_vᵀ + λW*) ⊘ (W_vH_vH_vᵀ + λW_v).
      la::Matrix numerator = la::MatMulT(x[v], h[v]);
      numerator.Add(consensus, options.lambda);
      la::Matrix denominator = la::MatMul(w[v], la::OuterGram(h[v]));
      denominator.Add(w[v], options.lambda);
      for (std::size_t i = 0; i < w[v].size(); ++i) {
        w[v].data()[i] *=
            numerator.data()[i] / (denominator.data()[i] + kEps);
      }
    }
    // W* ← mean of the view factors (the closed-form minimizer; stays ≥ 0).
    consensus.Fill(0.0);
    for (std::size_t v = 0; v < active_views; ++v) {
      consensus.Add(w[v], 1.0 / static_cast<double>(active_views));
    }

    const double obj = objective();
    out.iterations = iter + 1;
    if (iter > 0 && prev_obj - obj <=
                        options.tolerance * std::max(prev_obj, kEps)) {
      out.objective = obj;
      break;
    }
    prev_obj = obj;
    out.objective = obj;
  }

  // Labels: K-means over the L1-normalized consensus rows (the usual
  // MultiNMF read-out; normalization removes per-sample scale).
  la::Matrix normalized = consensus;
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < c; ++j) sum += normalized(i, j);
    if (sum > 0.0) {
      for (std::size_t j = 0; j < c; ++j) normalized(i, j) /= sum;
    }
  }
  cluster::KMeansOptions km;
  km.num_clusters = c;
  km.restarts = options.kmeans_restarts;
  km.seed = options.seed;
  StatusOr<cluster::KMeansResult> clustered = cluster::KMeans(normalized, km);
  if (!clustered.ok()) return clustered.status();
  out.labels = std::move(clustered->labels);
  out.consensus = std::move(consensus);
  out.view_factors = std::move(w);
  return out;
}

}  // namespace umvsc::mvsc
