#include "mvsc/anchor_unified.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "cluster/anchor_embedding.h"
#include "cluster/gpi.h"
#include "cluster/rotation.h"
#include "data/standardize.h"
#include "graph/anchors.h"
#include "la/ops.h"
#include "la/svd.h"
#include "la/sym_eigen.h"
#include "mvsc/unified_internal.h"

namespace umvsc::mvsc {

namespace {

// Scales each stored value of z by inv_sqrt_mass of its column: Ẑ = Z·Λ^{−1/2}
// on the unchanged sparsity pattern.
la::CsrMatrix NormalizeColumns(const la::CsrMatrix& z,
                               const la::Vector& mass) {
  la::Vector inv_sqrt(z.cols(), 0.0);
  for (std::size_t j = 0; j < z.cols(); ++j) {
    inv_sqrt[j] = mass[j] > 0.0 ? 1.0 / std::sqrt(mass[j]) : 0.0;
  }
  std::vector<std::size_t> offsets = z.row_offsets();
  std::vector<std::size_t> cols = z.col_indices();
  std::vector<double> vals = z.values();
  for (std::size_t e = 0; e < vals.size(); ++e) vals[e] *= inv_sqrt[cols[e]];
  return la::CsrMatrix::FromParts(z.rows(), z.cols(), std::move(offsets),
                                  std::move(cols), std::move(vals));
}

}  // namespace

StatusOr<AnchorUnifiedResult> SolveUnifiedAnchors(
    const data::MultiViewDataset& dataset, const UnifiedOptions& options,
    bool standardize) {
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  const std::size_t n = dataset.NumSamples();
  const std::size_t num_views = dataset.NumViews();
  const std::size_t c = options.num_clusters;
  const std::size_t m = options.anchors.num_anchors;
  const std::size_t s = options.anchors.anchor_neighbors;
  const std::size_t per_view = options.anchors.basis_per_view > 0
                                   ? options.anchors.basis_per_view
                                   : c + 2;
  const std::size_t k_view = std::min(per_view, m);
  if (c < 2 || c >= n) {
    return Status::InvalidArgument("UnifiedMVSC requires 2 <= c < n");
  }
  if (m < 2 || m >= n) {
    return Status::InvalidArgument(
        "anchor mode requires 2 <= num_anchors < n");
  }
  if (s < 1 || s > m) {
    return Status::InvalidArgument(
        "anchor mode requires 1 <= anchor_neighbors <= num_anchors");
  }
  if (k_view < 1) {
    return Status::InvalidArgument("anchor basis_per_view must be >= 1");
  }
  if (options.beta < 0.0) {
    return Status::InvalidArgument("beta must be nonnegative");
  }
  if (options.weighting == ViewWeighting::kGammaPower &&
      options.gamma <= 1.0) {
    return Status::InvalidArgument("gamma-power weighting requires gamma > 1");
  }

  AnchorUnifiedResult out;
  out.model.anchor_neighbors = s;
  out.model.num_clusters = c;

  // --- Per-view anchor pipeline: anchors → bipartite Z → reduced embedding.
  // Serial over views (each inner kernel — panel fill, SpMM — is itself
  // pool-parallel and bitwise deterministic); per-view seeds are derived
  // from the run seed and the view index.
  std::vector<la::Matrix> embeddings(num_views);
  std::vector<la::CsrMatrix> zhat(num_views);
  for (std::size_t v = 0; v < num_views; ++v) {
    AnchorViewModel view_model;
    la::Matrix x;
    if (standardize) {
      // data/standardize.h is the one shared z-scoring definition, so the
      // model's (means, inv_stds) map serve-time points into exactly the
      // feature space the anchors live in.
      data::ColumnStandardization(dataset.views[v], &view_model.feature_means,
                                  &view_model.feature_inv_stds);
      x = data::ApplyStandardization(dataset.views[v],
                                     view_model.feature_means,
                                     view_model.feature_inv_stds);
    } else {
      x = dataset.views[v];
      view_model.feature_means = la::Vector(x.cols(), 0.0);
      view_model.feature_inv_stds = la::Vector(x.cols(), 1.0);
    }

    graph::AnchorOptions aopts;
    aopts.num_anchors = m;
    aopts.selection = options.anchors.selection;
    aopts.seed = options.seed + 211 * (v + 1);
    StatusOr<la::Matrix> anchors = graph::SelectAnchors(x, aopts);
    if (!anchors.ok()) return anchors.status();

    graph::AnchorGraphOptions gopts;
    gopts.anchor_neighbors = s;
    gopts.tile_rows = options.anchors.tile_rows;
    StatusOr<la::CsrMatrix> z = graph::BuildAnchorAffinity(x, *anchors, gopts);
    if (!z.ok()) return z.status();

    cluster::AnchorEmbeddingOptions eopts;
    eopts.dims = k_view;
    eopts.mode = options.block_lanczos;
    eopts.seed = options.seed + 17;
    eopts.matvec_count = &out.result.lanczos_matvecs;
    StatusOr<cluster::AnchorEmbeddingResult> emb =
        cluster::AnchorSpectralEmbedding(*z, eopts);
    if (!emb.ok()) return emb.status();

    embeddings[v] = std::move(emb->embedding);
    zhat[v] = NormalizeColumns(*z, emb->anchor_mass);
    view_model.anchors = std::move(*anchors);
    view_model.anchor_map = std::move(emb->anchor_map);
    out.model.views.push_back(std::move(view_model));
  }

  // --- Joint orthonormal basis B = [U_1 | … | U_V]·T: T comes from the
  // Gram eigendecomposition [U]ᵀ[U] = W·S·Wᵀ, T = W·S^{−1/2} over the
  // directions with non-negligible eigenvalue — rank deficiency across
  // views (shared structure) truncates gracefully instead of dividing by 0.
  const la::Matrix concat = la::HConcat(embeddings);
  embeddings.clear();
  const std::size_t p_full = concat.cols();
  StatusOr<la::SymEigenResult> gram_eig = la::SymmetricEigen(la::Gram(concat));
  if (!gram_eig.ok()) return gram_eig.status();
  double max_gram = 0.0;
  for (std::size_t j = 0; j < p_full; ++j) {
    max_gram = std::max(max_gram, gram_eig->eigenvalues[j]);
  }
  const double gram_tol = 1e-10 * std::max(max_gram, 1.0);
  std::vector<std::size_t> kept;
  for (std::size_t j = p_full; j > 0; --j) {  // descending eigenvalue order
    if (gram_eig->eigenvalues[j - 1] > gram_tol) kept.push_back(j - 1);
  }
  const std::size_t p = kept.size();
  if (p < c) {
    return Status::InvalidArgument(
        "anchor basis rank fell below the cluster count; raise num_anchors "
        "or basis_per_view");
  }
  la::Matrix mix(p_full, p);
  for (std::size_t t = 0; t < p; ++t) {
    const std::size_t j = kept[t];
    const double inv_sqrt = 1.0 / std::sqrt(gram_eig->eigenvalues[j]);
    for (std::size_t r = 0; r < p_full; ++r) {
      mix(r, t) = gram_eig->eigenvectors(r, j) * inv_sqrt;
    }
  }
  const la::Matrix basis = la::MatMul(concat, mix);  // n × p, BᵀB ≈ I

  // --- Reduced per-view Laplacians H_v = BᵀL_vB = BᵀB − E_vᵀE_v with
  // E_v = Ẑ_vᵀB (m × p, one transposed SpMM — O(n·s·p), never an n × n
  // Laplacian). Symmetrized and stored as p × p CSR so the exact path's
  // combiner, eigensolves, GPI, and trace kernels apply unchanged. The
  // spectrum lies in [0, 1] up to basis rounding (Z row-stochastic).
  const la::Matrix btb = la::Gram(basis);
  std::vector<la::CsrMatrix> reduced(num_views);
  for (std::size_t v = 0; v < num_views; ++v) {
    const la::Matrix e = zhat[v].Transposed().Multiply(basis);
    la::Matrix h = la::Add(btb, la::Gram(e), -1.0);
    h.Symmetrize();
    reduced[v] = la::CsrMatrix::FromDense(h);
  }
  zhat.clear();

  // --- From here the solve IS unified.cc's, with F = B·G: the same floors,
  // warm-started init alternations, and G/R/Y/α blocks run on the p × p
  // reduced Laplacians; only the Y-step reconstructs n rows (row-argmax of
  // B·G·R) because labels are an n-point object.
  la::LanczosOptions lanczos;
  lanczos.seed = options.seed + 17;
  lanczos.max_subspace = std::min(p, std::max<std::size_t>(12 * c + 100, 250));
  lanczos.tolerance = 3e-6;
  std::vector<double> floors(num_views, 0.0);
  if (options.smoothness == SmoothnessNormalization::kExcess) {
    StatusOr<std::vector<double>> spectral =
        internal::SpectralFloors(reduced, c, lanczos, options.block_lanczos,
                                 &out.result.lanczos_matvecs);
    if (!spectral.ok()) return spectral.status();
    floors = std::move(*spectral);
  }

  internal::Weights weights;
  weights.coefficients.assign(num_views, 1.0 / static_cast<double>(num_views));
  la::Matrix g;
  const la::CsrCombiner combiner = la::CsrCombiner::Plan(reduced);
  const std::size_t warmups =
      std::max<std::size_t>(1, options.init_alternations);
  for (std::size_t warm = 0; warm < warmups; ++warm) {
    la::CsrMatrix combined = combiner.Combine(reduced, weights.coefficients);
    la::LanczosOptions warm_lanczos = lanczos;
    warm_lanczos.matvec_count = &out.result.lanczos_matvecs;
    if (options.warm_start && g.rows() == p && g.cols() == c) {
      warm_lanczos.warm_start = &g;
    }
    StatusOr<la::SymEigenResult> init_eig = internal::SmallestEigenpairsSparse(
        combined, c, cluster::GershgorinUpperBound(combined) + 1e-9,
        warm_lanczos, options.block_lanczos);
    if (!init_eig.ok()) return init_eig.status();
    g = std::move(init_eig->eigenvectors);
    const std::vector<double> h = internal::ViewSmoothness(reduced, g, floors);
    weights = internal::UpdateWeights(h, options.weighting, options.gamma);
    double smoothness = 0.0;
    for (std::size_t v = 0; v < num_views; ++v) {
      smoothness += weights.coefficients[v] * h[v];
    }
    out.result.warmup_trace.push_back(smoothness);
  }

  // Objective of the reduced iterate — identical in VALUE to the exact
  // path's UnifiedObjective at F = B·G (the traces agree because
  // Tr(FᵀL_vF) = Tr(GᵀH_vG); the residual is evaluated on the
  // reconstructed rows exactly).
  auto objective = [&](const la::Matrix& g_cur, const la::Matrix& rot,
                       const la::Matrix& y_hat_cur,
                       const la::Matrix& f_full_cur) {
    double obj = 0.0;
    for (std::size_t v = 0; v < num_views; ++v) {
      obj += weights.coefficients[v] * la::QuadraticTrace(reduced[v], g_cur);
    }
    la::Matrix residual =
        la::Add(y_hat_cur, la::MatMul(f_full_cur, rot), -1.0);
    const double r = residual.FrobeniusNorm();
    return obj + options.beta * r * r;
  };

  la::Matrix f_full = la::MatMul(basis, g);  // n × c reconstruction
  cluster::RotationOptions rot_init;
  rot_init.seed = options.seed + 31;
  rot_init.restarts = 8;
  rot_init.scale_indicator = options.scale_indicator;
  StatusOr<cluster::RotationResult> init_disc =
      cluster::DiscretizeEmbedding(f_full, rot_init);
  if (!init_disc.ok()) return init_disc.status();
  la::Matrix rotation = std::move(init_disc->rotation);
  la::Matrix indicator = std::move(init_disc->indicator);
  la::Matrix y_hat = options.scale_indicator
                         ? cluster::ScaledIndicator(indicator)
                         : indicator;
  // Reduced image P = BᵀŶ (p × c): the ONLY coupling the G- and R-steps
  // need from the n-row indicator.
  la::Matrix p_red = la::MatTMul(basis, y_hat);

  double prev_obj = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // --- G-step: min Tr(GᵀHG) − 2β·Tr(Gᵀ P Rᵀ) on the p-dim Stiefel
    // manifold — the F-step compressed through F = B·G.
    la::CsrMatrix a = combiner.Combine(reduced, weights.coefficients);
    la::Matrix b = la::MatMulT(p_red, rotation);
    b.Scale(options.beta);
    cluster::GpiOptions gpi;
    gpi.max_iterations = options.gpi_iterations;
    StatusOr<cluster::GpiResult> gstep =
        cluster::GeneralizedPowerIteration(a, b, g, gpi);
    if (!gstep.ok()) return gstep.status();
    g = std::move(gstep->f);

    // --- R-step: Procrustes on FᵀŶ = GᵀP (c × c — no n-row pass).
    StatusOr<la::Matrix> rstep = la::ProcrustesRotation(la::MatTMul(g, p_red));
    if (!rstep.ok()) return rstep.status();
    rotation = std::move(*rstep);

    // --- Y-step: the one reconstruction per iteration — labels are an
    // n-point object, so the row-argmax of F·R = B·(G·R) must see n rows.
    f_full = la::MatMul(basis, g);
    la::Matrix fr = la::MatMul(f_full, rotation);
    std::vector<std::size_t> labels = internal::DiscretizeRows(fr, c);
    indicator = cluster::LabelsToIndicator(labels, c);
    y_hat = options.scale_indicator ? cluster::ScaledIndicator(indicator)
                                    : indicator;
    p_red = la::MatTMul(basis, y_hat);

    // --- α-step: closed form on the reduced traces.
    weights = internal::UpdateWeights(
        internal::ViewSmoothness(reduced, g, floors), options.weighting,
        options.gamma);

    const double obj = objective(g, rotation, y_hat, f_full);
    out.result.objective_trace.push_back(obj);
    out.result.iterations = iter + 1;
    if (iter > 0 &&
        std::fabs(prev_obj - obj) <=
            options.tolerance * std::max(std::fabs(prev_obj), 1e-12)) {
      out.result.converged = true;
      break;
    }
    prev_obj = obj;
  }

  // Final polish, as on the exact path: re-search (Y, R) for the converged
  // embedding with fresh restarts, accepted only on objective improvement.
  {
    cluster::RotationOptions rot_final;
    rot_final.seed = options.seed + 97;
    rot_final.restarts = 8;
    rot_final.scale_indicator = options.scale_indicator;
    StatusOr<cluster::RotationResult> polished =
        cluster::DiscretizeEmbedding(f_full, rot_final);
    if (polished.ok()) {
      la::Matrix polished_y_hat =
          options.scale_indicator ? cluster::ScaledIndicator(polished->indicator)
                                  : polished->indicator;
      const double incumbent = objective(g, rotation, y_hat, f_full);
      const double candidate =
          objective(g, polished->rotation, polished_y_hat, f_full);
      if (candidate < incumbent) {
        rotation = std::move(polished->rotation);
        indicator = std::move(polished->indicator);
      }
    }
  }

  out.result.labels = cluster::IndicatorToLabels(indicator);
  out.result.indicator = std::move(indicator);
  out.result.embedding = std::move(f_full);
  out.result.rotation = rotation;
  out.result.view_weights = weights.alpha;
  out.model.mix = mix;
  out.model.assignment = la::MatMul(mix, la::MatMul(g, rotation));
  return out;
}

}  // namespace umvsc::mvsc
