#include "mvsc/anchor_unified.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cluster/anchor_embedding.h"
#include "data/standardize.h"
#include "graph/anchors.h"
#include "la/ops.h"
#include "mvsc/reduced_solve.h"

namespace umvsc::mvsc {

namespace {

// Scales each stored value of z by inv_sqrt_mass of its column: Ẑ = Z·Λ^{−1/2}
// on the unchanged sparsity pattern.
la::CsrMatrix NormalizeColumns(const la::CsrMatrix& z,
                               const la::Vector& mass) {
  la::Vector inv_sqrt(z.cols(), 0.0);
  for (std::size_t j = 0; j < z.cols(); ++j) {
    inv_sqrt[j] = mass[j] > 0.0 ? 1.0 / std::sqrt(mass[j]) : 0.0;
  }
  std::vector<std::size_t> offsets = z.row_offsets();
  std::vector<std::size_t> cols = z.col_indices();
  std::vector<double> vals = z.values();
  for (std::size_t e = 0; e < vals.size(); ++e) vals[e] *= inv_sqrt[cols[e]];
  return la::CsrMatrix::FromParts(z.rows(), z.cols(), std::move(offsets),
                                  std::move(cols), std::move(vals));
}

}  // namespace

StatusOr<AnchorUnifiedResult> SolveUnifiedAnchors(
    const data::MultiViewDataset& dataset, const UnifiedOptions& options,
    bool standardize) {
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  const std::size_t n = dataset.NumSamples();
  const std::size_t num_views = dataset.NumViews();
  const std::size_t c = options.num_clusters;
  const std::size_t m = options.anchors.num_anchors;
  const std::size_t s = options.anchors.anchor_neighbors;
  const std::size_t per_view = options.anchors.basis_per_view > 0
                                   ? options.anchors.basis_per_view
                                   : c + 2;
  const std::size_t k_view = std::min(per_view, m);
  if (c < 2 || c >= n) {
    return Status::InvalidArgument("UnifiedMVSC requires 2 <= c < n");
  }
  if (m < 2 || m >= n) {
    return Status::InvalidArgument(
        "anchor mode requires 2 <= num_anchors < n");
  }
  if (s < 1 || s > m) {
    return Status::InvalidArgument(
        "anchor mode requires 1 <= anchor_neighbors <= num_anchors");
  }
  if (k_view < 1) {
    return Status::InvalidArgument("anchor basis_per_view must be >= 1");
  }
  if (options.beta < 0.0) {
    return Status::InvalidArgument("beta must be nonnegative");
  }
  if (options.weighting == ViewWeighting::kGammaPower &&
      options.gamma <= 1.0) {
    return Status::InvalidArgument("gamma-power weighting requires gamma > 1");
  }

  AnchorUnifiedResult out;
  out.model.anchor_neighbors = s;
  out.model.num_clusters = c;

  // --- Per-view anchor pipeline: anchors → bipartite Z → reduced embedding.
  // Serial over views (each inner kernel — panel fill, SpMM — is itself
  // pool-parallel and bitwise deterministic); per-view seeds are derived
  // from the run seed and the view index.
  std::vector<la::Matrix> embeddings(num_views);
  std::vector<la::CsrMatrix> zhat(num_views);
  for (std::size_t v = 0; v < num_views; ++v) {
    AnchorViewModel view_model;
    la::Matrix x;
    if (standardize) {
      // data/standardize.h is the one shared z-scoring definition, so the
      // model's (means, inv_stds) map serve-time points into exactly the
      // feature space the anchors live in.
      data::ColumnStandardization(dataset.views[v], &view_model.feature_means,
                                  &view_model.feature_inv_stds);
      x = data::ApplyStandardization(dataset.views[v],
                                     view_model.feature_means,
                                     view_model.feature_inv_stds);
    } else {
      x = dataset.views[v];
      view_model.feature_means = la::Vector(x.cols(), 0.0);
      view_model.feature_inv_stds = la::Vector(x.cols(), 1.0);
    }

    graph::AnchorOptions aopts;
    aopts.num_anchors = m;
    aopts.selection = options.anchors.selection;
    aopts.seed = options.seed + 211 * (v + 1);
    StatusOr<la::Matrix> anchors = graph::SelectAnchors(x, aopts);
    if (!anchors.ok()) return anchors.status();

    graph::AnchorGraphOptions gopts;
    gopts.anchor_neighbors = s;
    gopts.tile_rows = options.anchors.tile_rows;
    StatusOr<la::CsrMatrix> z = graph::BuildAnchorAffinity(x, *anchors, gopts);
    if (!z.ok()) return z.status();

    cluster::AnchorEmbeddingOptions eopts;
    eopts.dims = k_view;
    eopts.mode = options.block_lanczos;
    eopts.seed = options.seed + 17;
    eopts.matvec_count = &out.result.lanczos_matvecs;
    StatusOr<cluster::AnchorEmbeddingResult> emb =
        cluster::AnchorSpectralEmbedding(*z, eopts);
    if (!emb.ok()) return emb.status();

    embeddings[v] = std::move(emb->embedding);
    zhat[v] = NormalizeColumns(*z, emb->anchor_mass);
    view_model.anchors = std::move(*anchors);
    view_model.anchor_map = std::move(emb->anchor_map);
    out.model.views.push_back(std::move(view_model));
  }

  // --- Joint orthonormal basis B = [U_1 | … | U_V]·mix over the Gram
  // eigendecomposition (reduced_solve.h — shared with the streaming path,
  // which rebuilds the basis over its window with the same truncation).
  const la::Matrix concat = la::HConcat(embeddings);
  embeddings.clear();
  la::Matrix mix;
  StatusOr<la::Matrix> basis_or =
      JointOrthonormalBasis(concat, c, &mix, options.hooks.batcher);
  if (!basis_or.ok()) return basis_or.status();
  const la::Matrix basis = std::move(*basis_or);

  // --- Reduced per-view Laplacians H_v = BᵀL_vB = BᵀB − E_vᵀE_v with
  // E_v = Ẑ_vᵀB (m × p, one transposed SpMM — O(n·s·p), never an n × n
  // Laplacian). Symmetrized and stored as p × p CSR so the exact path's
  // combiner, eigensolves, GPI, and trace kernels apply unchanged. The
  // spectrum lies in [0, 1] up to basis rounding (Z row-stochastic).
  const la::Matrix btb = la::Gram(basis);
  std::vector<la::CsrMatrix> reduced(num_views);
  for (std::size_t v = 0; v < num_views; ++v) {
    const la::Matrix e = zhat[v].Transposed().Multiply(basis);
    la::Matrix h = la::Add(btb, la::Gram(e), -1.0);
    h.Symmetrize();
    reduced[v] = la::CsrMatrix::FromDense(h);
  }
  zhat.clear();

  // --- From here the solve IS unified.cc's, with F = B·G: the same floors,
  // warm-started init alternations, and G/R/Y/α blocks run on the p × p
  // reduced Laplacians; only the Y-step reconstructs n rows (row-argmax of
  // B·G·R) because labels are an n-point object. The alternation itself is
  // shared with the streaming updater (reduced_solve.h); this batch path
  // enters cold — discretize-init plus final polish.
  ReducedSolveControls controls;  // defaults: cold entry, polish on
  StatusOr<ReducedSolveState> state =
      SolveReducedAlternation(reduced, basis, options, controls, &out.result);
  if (!state.ok()) return state.status();

  out.model.mix = mix;
  out.model.assignment =
      la::MatMul(mix, la::MatMul(state->g, state->rotation));
  return out;
}

}  // namespace umvsc::mvsc
