#ifndef UMVSC_MVSC_BASELINES_H_
#define UMVSC_MVSC_BASELINES_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "mvsc/graphs.h"

namespace umvsc::mvsc {

/// Options shared by the single-graph baselines.
struct BaselineOptions {
  std::size_t num_clusters = 2;
  std::size_t kmeans_restarts = 10;
  std::uint64_t seed = 0;
  GraphOptions graph;
};

/// Labels from spectral clustering on each view's graph independently.
/// The harness reports the best view post hoc ("SC-best", the strongest
/// single-view baseline of the comparison tables).
StatusOr<std::vector<std::vector<std::size_t>>> PerViewSpectral(
    const MultiViewGraphs& graphs, const BaselineOptions& options);

/// Feature-concatenation baseline: stack all (standardized) views into one
/// wide matrix, build a single graph, and run spectral clustering.
StatusOr<std::vector<std::size_t>> ConcatFeatureSC(
    const data::MultiViewDataset& dataset, const BaselineOptions& options);

/// Kernel/graph-addition baseline: average the per-view affinities into one
/// graph and run spectral clustering on it (uniform, non-adaptive fusion).
StatusOr<std::vector<std::size_t>> KernelAdditionSC(
    const MultiViewGraphs& graphs, const BaselineOptions& options);

/// Multi-view K-means baseline: K-means on the concatenated standardized
/// features — no graphs at all; calibrates how much spectral geometry buys.
StatusOr<std::vector<std::size_t>> ConcatKMeans(
    const data::MultiViewDataset& dataset, const BaselineOptions& options);

/// Late-fusion ensemble baseline: spectral clustering per view, then
/// consensus clustering on the ensemble's co-association matrix (evidence
/// accumulation). Fuses decisions instead of graphs — the other end of the
/// fusion spectrum from the unified model.
StatusOr<std::vector<std::size_t>> EnsembleSC(const MultiViewGraphs& graphs,
                                              const BaselineOptions& options);

}  // namespace umvsc::mvsc

#endif  // UMVSC_MVSC_BASELINES_H_
