#ifndef UMVSC_MVSC_MVKKM_H_
#define UMVSC_MVSC_MVKKM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace umvsc::mvsc {

/// Options for multi-view kernel K-means.
struct MvkkmOptions {
  std::size_t num_clusters = 2;
  /// Weight exponent p > 1 (same role as γ in the spectral models).
  double p = 1.5;
  /// Outer weight↔clustering alternations.
  std::size_t max_iterations = 10;
  double tolerance = 1e-6;
  std::size_t kernel_kmeans_restarts = 5;
  std::uint64_t seed = 0;
};

/// Result of multi-view kernel K-means.
struct MvkkmResult {
  std::vector<std::size_t> labels;
  std::vector<double> view_weights;
  double objective = 0.0;
  std::size_t iterations = 0;
};

/// Multi-view kernel K-means (the MVKKM baseline of Tzortzis & Likas '12):
/// per-view Gaussian Gram matrices (median-heuristic bandwidth) are fused
/// as K = Σ_v w_v^p·K_v; alternates kernel K-means on the fused Gram with
/// the closed-form weight update w_v ∝ E_v^{1/(1−p)}, where E_v is view v's
/// kernel K-means objective under the current partition.
StatusOr<MvkkmResult> MultiViewKernelKMeans(const data::MultiViewDataset& dataset,
                                            const MvkkmOptions& options);

}  // namespace umvsc::mvsc

#endif  // UMVSC_MVSC_MVKKM_H_
