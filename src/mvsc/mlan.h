#ifndef UMVSC_MVSC_MLAN_H_
#define UMVSC_MVSC_MLAN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "la/matrix.h"

namespace umvsc::mvsc {

/// Options for MLAN.
struct MlanOptions {
  std::size_t num_clusters = 2;
  /// Neighbors per row of the learned graph.
  std::size_t knn = 10;
  std::size_t max_iterations = 25;
  std::size_t kmeans_restarts = 10;
  std::uint64_t seed = 0;
};

/// Result of MLAN.
struct MlanResult {
  std::vector<std::size_t> labels;
  /// The learned unified graph (symmetrized), n × n.
  la::Matrix learned_graph;
  la::Matrix embedding;
  std::vector<double> view_weights;
  std::size_t iterations = 0;
  /// True when the learned graph ended with exactly c connected components
  /// (labels then come straight from the components, no K-means).
  bool exact_components = false;
};

/// Multi-view Learning with Adaptive Neighbours (Nie, Cai & Li, AAAI 2017),
/// the graph-learning baseline: learns a single similarity graph S shared
/// by all views,
///
///   min_{S,F}  Σ_v w_v Σ_ij d_ij^v·s_ij + γ·‖S‖²_F + 2λ·Tr(Fᵀ L_S F)
///   s.t. every row of S on the probability simplex, FᵀF = I,
///
/// with parameter-free view weights w_v = 1/(2√(Σ_ij d_ij^v s_ij)) and λ
/// adapted so L_S approaches rank n − c (then the c components of S ARE the
/// clusters). Row updates are closed-form simplex projections restricted to
/// each point's k nearest candidates.
StatusOr<MlanResult> Mlan(const data::MultiViewDataset& dataset,
                          const MlanOptions& options);

}  // namespace umvsc::mvsc

#endif  // UMVSC_MVSC_MLAN_H_
