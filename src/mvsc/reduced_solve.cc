#include "mvsc/reduced_solve.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "cluster/gpi.h"
#include "cluster/rotation.h"
#include "la/lanczos.h"
#include "la/ops.h"
#include "la/svd.h"
#include "la/sym_eigen.h"
#include "mvsc/unified_internal.h"

namespace umvsc::mvsc {

StatusOr<la::Matrix> JointOrthonormalBasis(const la::Matrix& concat,
                                           std::size_t min_rank,
                                           la::Matrix* mix_out,
                                           la::SmallSolveBatcher* batcher) {
  UMVSC_CHECK(mix_out != nullptr, "mix sink is required");
  const std::size_t p_full = concat.cols();
  const la::Matrix gram = la::Gram(concat);
  StatusOr<la::SymEigenResult> gram_eig =
      batcher != nullptr ? batcher->SymEigen(gram) : la::SymmetricEigen(gram);
  if (!gram_eig.ok()) return gram_eig.status();
  double max_gram = 0.0;
  for (std::size_t j = 0; j < p_full; ++j) {
    max_gram = std::max(max_gram, gram_eig->eigenvalues[j]);
  }
  const double gram_tol = 1e-10 * std::max(max_gram, 1.0);
  std::vector<std::size_t> kept;
  for (std::size_t j = p_full; j > 0; --j) {  // descending eigenvalue order
    if (gram_eig->eigenvalues[j - 1] > gram_tol) kept.push_back(j - 1);
  }
  const std::size_t p = kept.size();
  if (p < min_rank) {
    return Status::InvalidArgument(
        "anchor basis rank fell below the cluster count; raise num_anchors "
        "or basis_per_view");
  }
  la::Matrix mix(p_full, p);
  for (std::size_t t = 0; t < p; ++t) {
    const std::size_t j = kept[t];
    const double inv_sqrt = 1.0 / std::sqrt(gram_eig->eigenvalues[j]);
    for (std::size_t r = 0; r < p_full; ++r) {
      mix(r, t) = gram_eig->eigenvectors(r, j) * inv_sqrt;
    }
  }
  la::Matrix basis = la::MatMul(concat, mix);  // n × p, BᵀB ≈ I
  *mix_out = std::move(mix);
  return basis;
}

StatusOr<ReducedSolveState> SolveReducedAlternation(
    const std::vector<la::CsrMatrix>& reduced, const la::Matrix& basis,
    const UnifiedOptions& options, const ReducedSolveControls& controls,
    UnifiedResult* result) {
  UMVSC_CHECK(result != nullptr, "result sink is required");
  const std::size_t num_views = reduced.size();
  const std::size_t c = options.num_clusters;
  const std::size_t p = basis.cols();
  if (num_views == 0) {
    return Status::InvalidArgument("reduced solve needs at least one view");
  }
  for (const la::CsrMatrix& h : reduced) {
    if (h.rows() != p || h.cols() != p) {
      return Status::InvalidArgument(
          "reduced Laplacian shape does not match the basis");
    }
  }
  if (p < c) {
    return Status::InvalidArgument(
        "reduced dimension fell below the cluster count");
  }

  la::LanczosOptions lanczos;
  lanczos.seed = options.seed + 17;
  lanczos.max_subspace = std::min(p, std::max<std::size_t>(12 * c + 100, 250));
  lanczos.tolerance = 3e-6;
  std::vector<double> floors(num_views, 0.0);
  if (options.smoothness == SmoothnessNormalization::kExcess) {
    StatusOr<std::vector<double>> spectral =
        internal::SpectralFloors(reduced, c, lanczos, options.block_lanczos,
                                 &result->lanczos_matvecs);
    if (!spectral.ok()) return spectral.status();
    floors = std::move(*spectral);
  }

  // Warm-start validity: every piece is checked against the CURRENT shapes.
  // A stale piece (p changed after an anchor re-selection, c changed after
  // a cluster-count update) silently degrades that piece to cold instead of
  // erroring — the caller asked for the best available start, not a crash.
  const ReducedWarmStart* warm = controls.warm;
  const bool warm_g = warm != nullptr && warm->g.rows() == p &&
                      warm->g.cols() == c;
  const bool warm_rotation = warm != nullptr && warm->rotation.rows() == c &&
                             warm->rotation.cols() == c;
  const bool warm_weights =
      warm != nullptr && warm->weight_coefficients.size() == num_views;

  internal::Weights weights;
  if (warm_weights) {
    weights.coefficients = warm->weight_coefficients;
  } else {
    weights.coefficients.assign(num_views,
                                1.0 / static_cast<double>(num_views));
  }
  la::Matrix g;
  if (warm_g) g = warm->g;
  const la::CsrCombiner combiner = la::CsrCombiner::Plan(reduced);
  const std::size_t warmups =
      std::max<std::size_t>(1, options.init_alternations);
  for (std::size_t iter = 0; iter < warmups; ++iter) {
    la::CsrMatrix combined = combiner.Combine(reduced, weights.coefficients);
    la::LanczosOptions warm_lanczos = lanczos;
    warm_lanczos.matvec_count = &result->lanczos_matvecs;
    if (options.warm_start && g.rows() == p && g.cols() == c) {
      warm_lanczos.warm_start = &g;
    }
    StatusOr<la::SymEigenResult> init_eig = internal::SmallestEigenpairsSparse(
        combined, c, cluster::GershgorinUpperBound(combined) + 1e-9,
        warm_lanczos, options.block_lanczos);
    if (!init_eig.ok()) return init_eig.status();
    g = std::move(init_eig->eigenvectors);
    const std::vector<double> h = internal::ViewSmoothness(reduced, g, floors);
    weights = internal::UpdateWeights(h, options.weighting, options.gamma);
    double smoothness = 0.0;
    for (std::size_t v = 0; v < num_views; ++v) {
      smoothness += weights.coefficients[v] * h[v];
    }
    result->warmup_trace.push_back(smoothness);
  }

  // Objective of the reduced iterate — identical in VALUE to the exact
  // path's UnifiedObjective at F = B·G (the traces agree because
  // Tr(FᵀL_vF) = Tr(GᵀH_vG); the residual is evaluated on the
  // reconstructed rows exactly).
  auto objective = [&](const la::Matrix& g_cur, const la::Matrix& rot,
                       const la::Matrix& y_hat_cur,
                       const la::Matrix& f_full_cur) {
    double obj = 0.0;
    for (std::size_t v = 0; v < num_views; ++v) {
      obj += weights.coefficients[v] * la::QuadraticTrace(reduced[v], g_cur);
    }
    la::Matrix residual =
        la::Add(y_hat_cur, la::MatMul(f_full_cur, rot), -1.0);
    const double r = residual.FrobeniusNorm();
    return obj + options.beta * r * r;
  };

  la::Matrix f_full = la::MatMul(basis, g);  // n × c reconstruction
  la::Matrix rotation;
  la::Matrix indicator;
  if (warm_rotation) {
    // Warm entry: the carried rotation is already at (or near) the previous
    // solve's fixed point — the indicator falls straight out of a row-argmax
    // pass, no restart search.
    rotation = warm->rotation;
    const la::Matrix fr = la::MatMul(f_full, rotation);
    indicator = cluster::LabelsToIndicator(internal::DiscretizeRows(fr, c), c);
  } else {
    cluster::RotationOptions rot_init;
    rot_init.seed = options.seed + 31;
    rot_init.restarts = 8;
    rot_init.scale_indicator = options.scale_indicator;
    StatusOr<cluster::RotationResult> init_disc =
        cluster::DiscretizeEmbedding(f_full, rot_init);
    if (!init_disc.ok()) return init_disc.status();
    rotation = std::move(init_disc->rotation);
    indicator = std::move(init_disc->indicator);
  }
  la::Matrix y_hat = options.scale_indicator
                         ? cluster::ScaledIndicator(indicator)
                         : indicator;
  // Reduced image P = BᵀŶ (p × c): the ONLY coupling the G- and R-steps
  // need from the n-row indicator.
  la::Matrix p_red = la::MatTMul(basis, y_hat);

  // Executor hooks, as on the exact path: scratch-backed temporaries and
  // batched c × c Procrustes — bitwise-identical iterates either way.
  SolveScratch local_scratch;
  SolveScratch& scratch = options.hooks.scratch != nullptr
                              ? *options.hooks.scratch
                              : local_scratch;
  double prev_obj = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // --- G-step: min Tr(GᵀHG) − 2β·Tr(Gᵀ P Rᵀ) on the p-dim Stiefel
    // manifold — the F-step compressed through F = B·G.
    la::CsrMatrix a = combiner.Combine(reduced, weights.coefficients);
    la::Matrix& b = SolveScratch::Ensure(scratch.b, p, c);
    la::MatMulTInto(p_red, rotation, b);
    b.Scale(options.beta);
    cluster::GpiOptions gpi;
    gpi.max_iterations = options.gpi_iterations;
    StatusOr<cluster::GpiResult> gstep =
        cluster::GeneralizedPowerIteration(a, b, g, gpi);
    if (!gstep.ok()) return gstep.status();
    g = std::move(gstep->f);

    // --- R-step: Procrustes on FᵀŶ = GᵀP (c × c — no n-row pass).
    la::Matrix& ctc = SolveScratch::Ensure(scratch.ctc, c, c);
    la::MatTMulInto(g, p_red, ctc);
    StatusOr<la::Matrix> rstep = options.hooks.batcher != nullptr
                                     ? options.hooks.batcher->Procrustes(ctc)
                                     : la::ProcrustesRotation(ctc);
    if (!rstep.ok()) return rstep.status();
    rotation = std::move(*rstep);

    // --- Y-step: the one reconstruction per iteration — labels are an
    // n-point object, so the row-argmax of F·R = B·(G·R) must see n rows.
    la::MatMulInto(basis, g, f_full);
    la::Matrix& fr = SolveScratch::Ensure(scratch.fr, f_full.rows(), c);
    la::MatMulInto(f_full, rotation, fr);
    std::vector<std::size_t> labels = internal::DiscretizeRows(fr, c);
    indicator = cluster::LabelsToIndicator(labels, c);
    y_hat = options.scale_indicator ? cluster::ScaledIndicator(indicator)
                                    : indicator;
    la::MatTMulInto(basis, y_hat, p_red);

    // --- α-step: closed form on the reduced traces.
    weights = internal::UpdateWeights(
        internal::ViewSmoothness(reduced, g, floors), options.weighting,
        options.gamma);

    const double obj = objective(g, rotation, y_hat, f_full);
    result->objective_trace.push_back(obj);
    result->iterations = iter + 1;
    if (iter > 0 &&
        std::fabs(prev_obj - obj) <=
            options.tolerance * std::max(std::fabs(prev_obj), 1e-12)) {
      result->converged = true;
      break;
    }
    prev_obj = obj;
  }

  if (controls.polish) {
    // Final polish, as on the exact path: re-search (Y, R) for the
    // converged embedding with fresh restarts, accepted only on objective
    // improvement.
    cluster::RotationOptions rot_final;
    rot_final.seed = options.seed + 97;
    rot_final.restarts = 8;
    rot_final.scale_indicator = options.scale_indicator;
    StatusOr<cluster::RotationResult> polished =
        cluster::DiscretizeEmbedding(f_full, rot_final);
    if (polished.ok()) {
      la::Matrix polished_y_hat =
          options.scale_indicator ? cluster::ScaledIndicator(polished->indicator)
                                  : polished->indicator;
      const double incumbent = objective(g, rotation, y_hat, f_full);
      const double candidate =
          objective(g, polished->rotation, polished_y_hat, f_full);
      if (candidate < incumbent) {
        rotation = std::move(polished->rotation);
        indicator = std::move(polished->indicator);
        y_hat = std::move(polished_y_hat);
      }
    }
  }

  ReducedSolveState state;
  state.objective = objective(g, rotation, y_hat, f_full);
  state.smoothness = internal::ViewSmoothness(reduced, g, floors);
  state.g = g;
  state.rotation = rotation;
  state.weight_coefficients = weights.coefficients;

  result->labels = cluster::IndicatorToLabels(indicator);
  result->indicator = std::move(indicator);
  result->embedding = std::move(f_full);
  result->rotation = std::move(rotation);
  result->view_weights = weights.alpha;
  return state;
}

}  // namespace umvsc::mvsc
