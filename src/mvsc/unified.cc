#include "mvsc/unified.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/parallel.h"
#include "cluster/gpi.h"
#include "cluster/rotation.h"
#include "la/lanczos.h"
#include "la/ops.h"
#include "la/svd.h"
#include "mvsc/anchor_unified.h"
#include "mvsc/unified_internal.h"

namespace umvsc::mvsc {

namespace {

constexpr double kTraceFloor = 1e-12;

}  // namespace

// The shared solver blocks below are declared in unified_internal.h so the
// reduced anchor path (anchor_unified.cc) runs the SAME update semantics.
namespace internal {

// Per-view smoothness h_v = Tr(Fᵀ L_v F) − offset_v, floored away from zero
// so the weight updates stay finite on views the embedding fits perfectly.
// With the kExcess normalization the offsets are each view's own spectral
// optimum, making the weights scale-invariant across views.
std::vector<double> ViewSmoothness(const std::vector<la::CsrMatrix>& laplacians,
                                   const la::Matrix& f,
                                   const std::vector<double>& offsets) {
  std::vector<double> h(laplacians.size());
  // Each view's trace is independent and lands in its own slot, so the
  // fan-out is write-disjoint and deterministic. Runs every outer
  // iteration — with one view per core this is the cheapest win of the
  // whole solver. (Nested QuadraticTrace calls degrade to serial.)
  ParallelFor(0, laplacians.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      h[v] = std::max(kTraceFloor,
                      la::QuadraticTrace(laplacians[v], f) - offsets[v]);
    }
  });
  return h;
}

// Dispatches a smallest-eigenpairs solve through the block-Lanczos panel
// path or the single-vector path — resolved per shape by the measured
// auto-policy unless the caller forces one — same contract either way.
StatusOr<la::SymEigenResult> SmallestEigenpairsSparse(
    const la::CsrMatrix& lap, std::size_t c, double spectral_bound,
    const la::LanczosOptions& options, la::EigensolveMode mode) {
  return la::LanczosSmallestAuto(lap, c, spectral_bound, options, mode);
}

// ĉ_v per view: the sum of the c smallest eigenvalues of L_v (the best
// smoothness any orthonormal F could achieve on that view alone).
StatusOr<std::vector<double>> SpectralFloors(
    const std::vector<la::CsrMatrix>& laplacians, std::size_t c,
    const la::LanczosOptions& lanczos, la::EigensolveMode block_lanczos,
    std::size_t* matvec_total) {
  const std::size_t num_views = laplacians.size();
  std::vector<double> floors(num_views, 0.0);
  // Every view shares one shape (n, c), so the solver choice is resolved
  // once, up front — which also keeps the policy's first-use calibration
  // (timed probes) out of the parallel region below, where the nested-
  // ParallelFor inlining would serialize the probe kernels and skew the
  // measurement.
  const la::EigensolveMode mode = la::ResolveEigensolveMode(
      block_lanczos, laplacians.empty() ? 0 : laplacians[0].rows(), c);
  // One Lanczos eigensolve per view, fanned out across views. Each solve is
  // seeded from the options, so its result does not depend on scheduling;
  // statuses are collected and checked in view order afterwards. Matvecs go
  // into per-view slots (the shared counter in `lanczos` would race) and are
  // summed in view order after the region.
  std::vector<std::optional<Status>> statuses(num_views);
  std::vector<std::size_t> matvecs(num_views, 0);
  ParallelFor(0, num_views, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      la::LanczosOptions local = lanczos;
      local.matvec_count = &matvecs[v];
      StatusOr<la::SymEigenResult> eig = SmallestEigenpairsSparse(
          laplacians[v], c, 2.0 + 1e-9, local, mode);
      if (!eig.ok()) {
        statuses[v].emplace(eig.status());
        continue;
      }
      statuses[v].emplace(Status::OK());
      double sum = 0.0;
      for (std::size_t j = 0; j < c; ++j) {
        sum += std::max(0.0, eig->eigenvalues[j]);
      }
      floors[v] = sum;
    }
  });
  for (std::size_t v = 0; v < num_views; ++v) {
    if (!statuses[v]->ok()) return *statuses[v];
    if (matvec_total != nullptr) *matvec_total += matvecs[v];
  }
  return floors;
}

namespace {

// Floors combination coefficients at a fraction of their maximum. A view
// whose graph fragments into more than c components has Tr(FᵀL_vF) ≈ 0, so
// its raw coefficient explodes and the weighted Laplacian's null space grows
// past c dimensions — the eigensolver then returns arbitrary directions.
// Keeping every view at ≥ 1e-3 of the dominant one preserves the weight
// ordering while the other views' connectivity disambiguates the embedding.
constexpr double kCoefficientFloorRatio = 1e-3;

void FloorCoefficients(std::vector<double>& coefficients) {
  double cmax = 0.0;
  for (double c : coefficients) cmax = std::max(cmax, c);
  if (cmax <= 0.0) return;
  for (double& c : coefficients) {
    c = std::max(c, kCoefficientFloorRatio * cmax);
  }
}

}  // namespace

Weights UpdateWeights(const std::vector<double>& h, ViewWeighting mode,
                      double gamma) {
  const std::size_t num_views = h.size();
  Weights w;
  w.alpha.assign(num_views, 1.0 / static_cast<double>(num_views));
  w.coefficients.assign(num_views, 1.0 / static_cast<double>(num_views));
  switch (mode) {
    case ViewWeighting::kUniform:
      break;
    case ViewWeighting::kGammaPower: {
      // α_v ∝ h_v^{1/(1−γ)} minimizes Σ α_v^γ h_v over the simplex.
      const double exponent = 1.0 / (1.0 - gamma);
      double total = 0.0;
      for (std::size_t v = 0; v < num_views; ++v) {
        w.alpha[v] = std::pow(h[v], exponent);
        total += w.alpha[v];
      }
      for (std::size_t v = 0; v < num_views; ++v) {
        w.alpha[v] /= total;
        w.coefficients[v] = std::pow(w.alpha[v], gamma);
      }
      break;
    }
    case ViewWeighting::kAmgl: {
      // The derivative trick of AMGL: Σ√h_v is minimized by iterating with
      // coefficients 1/(2√h_v). Report the normalized coefficients as α.
      double total = 0.0;
      for (std::size_t v = 0; v < num_views; ++v) {
        w.coefficients[v] = 0.5 / std::sqrt(h[v]);
        total += w.coefficients[v];
      }
      for (std::size_t v = 0; v < num_views; ++v) {
        w.alpha[v] = w.coefficients[v] / total;
      }
      break;
    }
  }
  FloorCoefficients(w.coefficients);
  return w;
}

// Row-argmax discretization with empty-cluster repair: an empty column j
// steals the row with the largest affinity F·R(:, j) among rows whose
// cluster keeps >= 2 members, so the solver cannot silently collapse
// clusters (mirrors the K-means empty-cluster convention).
std::vector<std::size_t> DiscretizeRows(const la::Matrix& fr,
                                        std::size_t num_clusters) {
  const std::size_t n = fr.rows();
  std::vector<std::size_t> labels(n, 0);
  std::vector<std::size_t> counts(num_clusters, 0);
  for (std::size_t i = 0; i < n; ++i) {
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < num_clusters; ++j) {
      if (fr(i, j) > best) {
        best = fr(i, j);
        labels[i] = j;
      }
    }
    counts[labels[i]]++;
  }
  for (std::size_t j = 0; j < num_clusters; ++j) {
    if (counts[j] != 0) continue;
    double best = -std::numeric_limits<double>::infinity();
    std::size_t best_i = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (counts[labels[i]] < 2) continue;
      if (fr(i, j) > best) {
        best = fr(i, j);
        best_i = i;
      }
    }
    if (best_i < n) {
      counts[labels[best_i]]--;
      labels[best_i] = j;
      counts[j] = 1;
    }
  }
  return labels;
}

}  // namespace internal

double UnifiedObjective(const std::vector<la::CsrMatrix>& laplacians,
                        const std::vector<double>& weight_coefficients,
                        double beta, const la::Matrix& f,
                        const la::Matrix& rotation,
                        const la::Matrix& indicator_scaled) {
  // Per-view traces fan out; the weighted sum is then taken serially in
  // view order, keeping the objective bitwise stable across thread counts.
  std::vector<double> traces(laplacians.size(), 0.0);
  ParallelFor(0, laplacians.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      traces[v] = la::QuadraticTrace(laplacians[v], f);
    }
  });
  double obj = 0.0;
  for (std::size_t v = 0; v < laplacians.size(); ++v) {
    obj += weight_coefficients[v] * traces[v];
  }
  la::Matrix residual = la::Add(indicator_scaled, la::MatMul(f, rotation), -1.0);
  const double r = residual.FrobeniusNorm();
  return obj + beta * r * r;
}

StatusOr<UnifiedResult> UnifiedMVSC::Run(const MultiViewGraphs& graphs) const {
  const std::size_t num_views = graphs.laplacians.size();
  const std::size_t n = graphs.NumSamples();
  const std::size_t c = options_.num_clusters;
  if (options_.anchors.enabled) {
    return Status::InvalidArgument(
        "anchor mode selects anchors from raw features; call "
        "Run(dataset) instead of Run(graphs)");
  }
  if (num_views == 0) {
    return Status::InvalidArgument("UnifiedMVSC requires at least one view");
  }
  if (c < 2 || c >= n) {
    return Status::InvalidArgument("UnifiedMVSC requires 2 <= c < n");
  }
  if (options_.beta < 0.0) {
    return Status::InvalidArgument("beta must be nonnegative");
  }
  if (options_.weighting == ViewWeighting::kGammaPower &&
      options_.gamma <= 1.0) {
    return Status::InvalidArgument("gamma-power weighting requires gamma > 1");
  }

  // --- Initialization: warm-start with a few weight↔embedding alternations
  // (fresh eigensolves, no discrete coupling). A single embedding of the
  // uniform average is fragile — one adversarial view can wreck it, and the
  // Y↔F alternation below would then lock onto the bad partition. The
  // alternations let the auto-weighting suppress such views first.
  la::LanczosOptions lanczos;
  lanczos.seed = options_.seed + 17;
  lanczos.max_subspace = std::min(n, std::max<std::size_t>(12 * c + 100, 250));
  lanczos.tolerance = 3e-6;
  UnifiedResult out;
  std::vector<double> floors(num_views, 0.0);
  if (options_.smoothness == SmoothnessNormalization::kExcess) {
    StatusOr<std::vector<double>> spectral =
        internal::SpectralFloors(graphs.laplacians, c, lanczos, options_.block_lanczos,
                       &out.lanczos_matvecs);
    if (!spectral.ok()) return spectral.status();
    floors = std::move(*spectral);
  }
  internal::Weights weights;
  weights.coefficients.assign(num_views, 1.0 / static_cast<double>(num_views));
  la::Matrix f;
  // The per-view Laplacians are fixed for the whole run, so the union
  // sparsity pattern of their weighted combinations is too: plan it once,
  // and every alternation/iteration below refreshes values only (no triplet
  // assembly, no sorting).
  const la::CsrCombiner combiner = la::CsrCombiner::Plan(graphs.laplacians);
  const std::size_t warmups = std::max<std::size_t>(1, options_.init_alternations);
  for (std::size_t warm = 0; warm < warmups; ++warm) {
    // Mass-renormalized combination: exact eigenvectors of the plain
    // weighted sum on complete data, and a resolvable bottom eigengap on
    // incomplete data (see MassNormalizedCombination).
    la::CsrMatrix combined = MassNormalizedCombination(
        combiner.Combine(graphs.laplacians, weights.coefficients));
    la::LanczosOptions warm_lanczos = lanczos;
    warm_lanczos.matvec_count = &out.lanczos_matvecs;
    if (options_.warm_start && f.rows() == n && f.cols() == c) {
      // Seed from the previous alternation's embedding: the combined
      // Laplacian moved only as far as the view weights did.
      warm_lanczos.warm_start = &f;
    }
    StatusOr<la::SymEigenResult> init_eig = internal::SmallestEigenpairsSparse(
        combined, c, cluster::GershgorinUpperBound(combined) + 1e-9,
        warm_lanczos, options_.block_lanczos);
    if (!init_eig.ok()) return init_eig.status();
    f = std::move(init_eig->eigenvectors);
    const std::vector<double> h = internal::ViewSmoothness(graphs.laplacians, f, floors);
    weights = internal::UpdateWeights(h, options_.weighting, options_.gamma);
    double smoothness = 0.0;
    for (std::size_t v = 0; v < num_views; ++v) {
      smoothness += weights.coefficients[v] * h[v];
    }
    out.warmup_trace.push_back(smoothness);
  }

  cluster::RotationOptions rot_init;
  rot_init.seed = options_.seed + 31;
  rot_init.restarts = 8;
  rot_init.scale_indicator = options_.scale_indicator;
  StatusOr<cluster::RotationResult> init_disc =
      cluster::DiscretizeEmbedding(f, rot_init);
  if (!init_disc.ok()) return init_disc.status();
  la::Matrix rotation = std::move(init_disc->rotation);
  la::Matrix indicator = std::move(init_disc->indicator);
  la::Matrix y_hat = options_.scale_indicator
                         ? cluster::ScaledIndicator(indicator)
                         : indicator;

  // Executor hooks: scratch-backed temporaries and batched small solves.
  // Both paths produce bitwise-identical iterates (solve_hooks.h), so the
  // loop below never branches on anything but where results live.
  SolveScratch local_scratch;
  SolveScratch& scratch = options_.hooks.scratch != nullptr
                              ? *options_.hooks.scratch
                              : local_scratch;
  double prev_obj = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // --- F-step: min Tr(FᵀAF) − 2β·Tr(Fᵀ Ŷ Rᵀ) on the Stiefel manifold.
    // Value-only combination over the precomputed union pattern; the GPI is
    // warm-started from the incumbent F below.
    la::CsrMatrix a = combiner.Combine(graphs.laplacians, weights.coefficients);
    la::Matrix& b = SolveScratch::Ensure(scratch.b, n, c);
    la::MatMulTInto(y_hat, rotation, b);
    b.Scale(options_.beta);
    cluster::GpiOptions gpi;
    gpi.max_iterations = options_.gpi_iterations;
    StatusOr<cluster::GpiResult> fstep =
        cluster::GeneralizedPowerIteration(a, b, f, gpi);
    if (!fstep.ok()) return fstep.status();
    f = std::move(fstep->f);

    // --- R-step: orthogonal Procrustes on FᵀŶ.
    la::Matrix& ctc = SolveScratch::Ensure(scratch.ctc, c, c);
    la::MatTMulInto(f, y_hat, ctc);
    StatusOr<la::Matrix> rstep =
        options_.hooks.batcher != nullptr
            ? options_.hooks.batcher->Procrustes(ctc)
            : la::ProcrustesRotation(ctc);
    if (!rstep.ok()) return rstep.status();
    rotation = std::move(*rstep);

    // --- Y-step: row-wise argmax of F·R (exact given F, R).
    la::Matrix& fr = SolveScratch::Ensure(scratch.fr, n, c);
    la::MatMulInto(f, rotation, fr);
    std::vector<std::size_t> labels = internal::DiscretizeRows(fr, c);
    indicator = cluster::LabelsToIndicator(labels, c);
    y_hat = options_.scale_indicator ? cluster::ScaledIndicator(indicator)
                                     : indicator;

    // --- α-step: closed form from the fresh smoothness values.
    weights = internal::UpdateWeights(internal::ViewSmoothness(graphs.laplacians, f, floors),
                            options_.weighting, options_.gamma);

    const double obj =
        UnifiedObjective(graphs.laplacians, weights.coefficients, options_.beta,
                         f, rotation, y_hat);
    out.objective_trace.push_back(obj);
    out.iterations = iter + 1;
    if (iter > 0 && std::fabs(prev_obj - obj) <=
                        options_.tolerance * std::max(std::fabs(prev_obj), 1e-12)) {
      out.converged = true;
      break;
    }
    prev_obj = obj;
  }

  // Final polish: re-search the (Y, R) pair for the converged F with fresh
  // rotation restarts — the alternation only ever refined the incumbent
  // rotation, and a restarted search occasionally finds a strictly better
  // discretization. Accepted only when the full objective improves.
  {
    cluster::RotationOptions rot_final;
    rot_final.seed = options_.seed + 97;
    rot_final.restarts = 8;
    rot_final.scale_indicator = options_.scale_indicator;
    StatusOr<cluster::RotationResult> polished =
        cluster::DiscretizeEmbedding(f, rot_final);
    if (polished.ok()) {
      la::Matrix polished_y_hat =
          options_.scale_indicator ? cluster::ScaledIndicator(polished->indicator)
                                   : polished->indicator;
      const double incumbent =
          UnifiedObjective(graphs.laplacians, weights.coefficients,
                           options_.beta, f, rotation, y_hat);
      const double candidate = UnifiedObjective(
          graphs.laplacians, weights.coefficients, options_.beta, f,
          polished->rotation, polished_y_hat);
      if (candidate < incumbent) {
        rotation = std::move(polished->rotation);
        indicator = std::move(polished->indicator);
      }
    }
  }

  out.labels = cluster::IndicatorToLabels(indicator);
  out.indicator = std::move(indicator);
  out.embedding = std::move(f);
  out.rotation = std::move(rotation);
  out.view_weights = std::move(weights.alpha);
  return out;
}

StatusOr<UnifiedResult> UnifiedMVSC::Run(
    const data::MultiViewDataset& dataset,
    const GraphOptions& graph_options) const {
  if (options_.anchors.enabled) {
    // The large-scale reduced path: no O(n²) graphs, no n-row eigensolves.
    StatusOr<AnchorUnifiedResult> anchored =
        SolveUnifiedAnchors(dataset, options_, graph_options.standardize);
    if (!anchored.ok()) return anchored.status();
    return std::move(anchored->result);
  }
  StatusOr<MultiViewGraphs> graphs = BuildGraphs(dataset, graph_options);
  if (!graphs.ok()) return graphs.status();
  return Run(*graphs);
}

}  // namespace umvsc::mvsc
