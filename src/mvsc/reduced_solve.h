#ifndef UMVSC_MVSC_REDUCED_SOLVE_H_
#define UMVSC_MVSC_REDUCED_SOLVE_H_

#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "la/sparse.h"
#include "mvsc/unified.h"

namespace umvsc::mvsc {

/// The reduced-space alternation shared by the batch anchor solver
/// (anchor_unified.cc) and the streaming updater (stream/). Both operate on
/// the SAME object — per-view reduced Laplacians H_v = BᵀL_vB (p × p CSR)
/// over an orthonormal basis B (n × p) with F = B·G — and must keep
/// identical update semantics; only how they ENTER the alternation differs
/// (cold discretize-init + polish vs. warm-started from carried state), so
/// the solve lives here once and the entry is a control knob.

/// Joint orthonormal basis B = concat·mix over concatenated per-view
/// embeddings [U_1 | … | U_V]: mix = W·S^{−1/2} from the Gram
/// eigendecomposition concatᵀconcat = W·S·Wᵀ over the directions with
/// non-negligible eigenvalue (relative 1e-10 cutoff) — rank deficiency
/// across views (shared structure) truncates gracefully instead of
/// dividing by zero. Fills `mix_out` (p_full × p, kept directions in
/// descending eigenvalue order) and returns B (n × p, BᵀB ≈ I). Errors
/// when the kept rank falls below `min_rank`. The dense Gram eigensolve
/// routes through `batcher` when one is given (executor jobs rendezvous
/// their basis builds into one batched dispatch — bitwise-identical
/// results per la::SmallSolveBatcher's contract); null calls the serial
/// kernel directly.
StatusOr<la::Matrix> JointOrthonormalBasis(const la::Matrix& concat,
                                           std::size_t min_rank,
                                           la::Matrix* mix_out,
                                           la::SmallSolveBatcher* batcher = nullptr);

/// State carried between solves to warm-start the next one: the reduced
/// embedding seeds the init eigensolves (la::LanczosOptions::warm_start),
/// the rotation replaces the cold discretize-init restarts, and the weight
/// coefficients skip the uniform-mixture cold open. Shapes are validated
/// against the current problem; a stale shape (e.g. after a cluster-count
/// change) disables that part of the warm start rather than erroring.
struct ReducedWarmStart {
  la::Matrix g;         ///< p × c reduced embedding of the previous solve
  la::Matrix rotation;  ///< c × c orthogonal rotation of the previous solve
  std::vector<double> weight_coefficients;  ///< per-view combination coeffs
};

/// How to enter the alternation.
struct ReducedSolveControls {
  /// Final (Y, R) re-search with fresh restarts, accepted only on objective
  /// improvement — the batch path's finisher. Streaming updates skip it:
  /// the carried rotation already sits at the incumbent's fixed point and
  /// per-batch latency matters more than a last objective nudge.
  bool polish = true;
  /// When set, enters warm: G seeds the init eigensolves, the carried
  /// rotation replaces the discretize-init, weights open at the carried
  /// mixture. When null (or shapes stale), the cold path runs: uniform
  /// weights, DiscretizeEmbedding init at seed+31, polish at seed+97.
  const ReducedWarmStart* warm = nullptr;
};

/// Final state of a solve, in the form the next warm start (and the drift
/// detector) consumes.
struct ReducedSolveState {
  la::Matrix g;         ///< p × c
  la::Matrix rotation;  ///< c × c
  std::vector<double> weight_coefficients;  ///< combination coefficients
  /// Per-view smoothness h_v at the final G (floors applied under kExcess)
  /// — the drift detector's per-view signal.
  std::vector<double> smoothness;
  /// Final objective value (after the polish decision) — the drift
  /// detector's global signal.
  double objective = 0.0;
};

/// Runs spectral floors (kExcess) → init alternations → G/R/Y/α loop →
/// optional polish. Appends traces and matvec counts to `result` and fills
/// its labels / indicator / embedding / rotation / view_weights. `basis`
/// must have orthonormal columns (BᵀB ≈ I) and as many columns as each H_v
/// has rows. Bitwise deterministic across thread counts for fixed options.
StatusOr<ReducedSolveState> SolveReducedAlternation(
    const std::vector<la::CsrMatrix>& reduced, const la::Matrix& basis,
    const UnifiedOptions& options, const ReducedSolveControls& controls,
    UnifiedResult* result);

}  // namespace umvsc::mvsc

#endif  // UMVSC_MVSC_REDUCED_SOLVE_H_
