#include "mvsc/coreg.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kmeans.h"
#include "la/lanczos.h"
#include "la/ops.h"

namespace umvsc::mvsc {

namespace {

// Y += (L − λ·Σ_u U_u·U_uᵀ)·X over a set of coupling embeddings without
// materializing the dense rank-c updates: one SpMM for the Laplacian plus a
// MatTMul/MatMul pair (c × b then n × b) per coupling — all level-3 panel
// kernels feeding the block eigensolver.
la::SymmetricBlockOperator ModifiedLaplacianOperator(
    const la::CsrMatrix& lap, std::vector<const la::Matrix*> couplings,
    double lambda) {
  return [&lap, couplings = std::move(couplings), lambda](const la::Matrix& x,
                                                          la::Matrix& y) {
    lap.MultiplyInto(x, y);
    if (lambda == 0.0) return;
    for (const la::Matrix* u : couplings) {
      if (u->cols() == 0) continue;
      la::Matrix proj = la::MatTMul(*u, x);  // Uᵀ·X (c × b)
      la::Matrix back = la::MatMul(*u, proj);
      y.Add(back, -lambda);
    }
  };
}

// Row-normalizes a matrix in place (unit Euclidean rows; zero rows stay).
void NormalizeRows(la::Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double norm = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) norm += m(i, j) * m(i, j);
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (std::size_t j = 0; j < m.cols(); ++j) m(i, j) /= norm;
    }
  }
}

StatusOr<std::vector<std::size_t>> KMeansLabels(const la::Matrix& features,
                                                std::size_t c,
                                                std::size_t restarts,
                                                std::uint64_t seed) {
  cluster::KMeansOptions km;
  km.num_clusters = c;
  km.restarts = restarts;
  km.seed = seed;
  StatusOr<cluster::KMeansResult> clustered = cluster::KMeans(features, km);
  if (!clustered.ok()) return clustered.status();
  return std::move(clustered->labels);
}

}  // namespace

StatusOr<CoRegResult> CoRegSpectral(const MultiViewGraphs& graphs,
                                    const CoRegOptions& options) {
  const std::size_t num_views = graphs.laplacians.size();
  const std::size_t n = graphs.NumSamples();
  const std::size_t c = options.num_clusters;
  if (num_views == 0) {
    return Status::InvalidArgument("CoRegSpectral requires at least one view");
  }
  if (c < 2 || c >= n) {
    return Status::InvalidArgument("CoRegSpectral requires 2 <= c < n");
  }
  if (options.lambda < 0.0) {
    return Status::InvalidArgument("lambda must be nonnegative");
  }

  la::LanczosOptions lanczos;
  lanczos.seed = options.seed + 43;
  lanczos.max_subspace = std::min(n, std::max<std::size_t>(12 * c + 100, 250));
  lanczos.tolerance = 3e-6;

  // Init: independent per-view spectral embeddings.
  std::vector<la::Matrix> embeddings(num_views);
  for (std::size_t v = 0; v < num_views; ++v) {
    StatusOr<la::SymEigenResult> eig =
        la::LanczosSmallestAuto(graphs.laplacians[v], c, 2.0 + 1e-9, lanczos);
    if (!eig.ok()) return eig.status();
    embeddings[v] = std::move(eig->eigenvectors);
  }

  la::Matrix consensus;
  double prev_obj = std::numeric_limits<double>::infinity();
  std::size_t iterations = 0;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (options.mode == CoRegMode::kCentroid) {
      // Consensus step: top-c eigenvectors of Σ_v U_v·U_vᵀ (matrix-free,
      // panel form: a MatTMul/MatMul pair per view).
      la::SymmetricBlockOperator sum_op = [&embeddings](const la::Matrix& x,
                                                        la::Matrix& y) {
        for (const la::Matrix& u : embeddings) {
          la::Matrix proj = la::MatTMul(u, x);
          la::Matrix back = la::MatMul(u, proj);
          y.Add(back, 1.0);
        }
      };
      StatusOr<la::SymEigenResult> top =
          la::LanczosLargestAuto(sum_op, n, c, lanczos);
      if (!top.ok()) return top.status();
      consensus = std::move(top->eigenvectors);
    }

    // Per-view step: smallest c eigenvectors of the modified operator. The
    // couplings are rank-c projectors, so the spectrum stays within
    // [−λ·(#couplings), 2] and 2 + ε remains a valid complement bound.
    for (std::size_t v = 0; v < num_views; ++v) {
      std::vector<const la::Matrix*> couplings;
      if (options.mode == CoRegMode::kCentroid) {
        couplings.push_back(&consensus);
      } else {
        for (std::size_t w = 0; w < num_views; ++w) {
          if (w != v) couplings.push_back(&embeddings[w]);
        }
      }
      la::SymmetricBlockOperator op = ModifiedLaplacianOperator(
          graphs.laplacians[v], std::move(couplings), options.lambda);
      StatusOr<la::SymEigenResult> eig =
          la::LanczosSmallestAuto(op, n, c, 2.0 + 1e-9, lanczos);
      if (!eig.ok()) return eig.status();
      embeddings[v] = std::move(eig->eigenvectors);
    }

    // Objective: Σ_v Tr(U_vᵀ L_v U_v) − λ·(agreement terms).
    double obj = 0.0;
    for (std::size_t v = 0; v < num_views; ++v) {
      obj += la::QuadraticTrace(graphs.laplacians[v], embeddings[v]);
      if (options.mode == CoRegMode::kCentroid) {
        const double agree =
            la::MatTMul(embeddings[v], consensus).FrobeniusNorm();
        obj -= options.lambda * agree * agree;
      } else {
        for (std::size_t w = v + 1; w < num_views; ++w) {
          const double agree =
              la::MatTMul(embeddings[v], embeddings[w]).FrobeniusNorm();
          obj -= 2.0 * options.lambda * agree * agree;
        }
      }
    }
    iterations = iter + 1;
    if (iter > 0 && std::fabs(prev_obj - obj) <=
                        options.tolerance * std::max(std::fabs(prev_obj), 1e-12)) {
      break;
    }
    prev_obj = obj;
  }

  CoRegResult out;
  if (options.mode == CoRegMode::kCentroid) {
    la::Matrix normalized = consensus;
    NormalizeRows(normalized);
    StatusOr<std::vector<std::size_t>> labels =
        KMeansLabels(normalized, c, options.kmeans_restarts, options.seed);
    if (!labels.ok()) return labels.status();
    out.labels = std::move(*labels);
    out.consensus = std::move(consensus);
  } else {
    // Pairwise mode: K-means on the row-normalized concatenation of all the
    // co-regularized view embeddings.
    la::Matrix stacked = la::HConcat(embeddings);
    NormalizeRows(stacked);
    StatusOr<std::vector<std::size_t>> labels =
        KMeansLabels(stacked, c, options.kmeans_restarts, options.seed);
    if (!labels.ok()) return labels.status();
    out.labels = std::move(*labels);
  }
  out.view_embeddings = std::move(embeddings);
  out.iterations = iterations;
  return out;
}

}  // namespace umvsc::mvsc
