#include "mvsc/two_stage.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/gpi.h"
#include "cluster/kmeans.h"
#include "la/lanczos.h"
#include "la/ops.h"

namespace umvsc::mvsc {

namespace {

constexpr double kTraceFloor = 1e-12;

// See FloorCoefficients in unified.cc: degenerate views (graph fragmenting
// into more than c components) would otherwise dominate the combination and
// blow up the weighted Laplacian's null space.
constexpr double kCoefficientFloorRatio = 1e-3;

std::vector<double> Coefficients(const std::vector<double>& h,
                                 ViewWeighting mode, double gamma) {
  const std::size_t num_views = h.size();
  std::vector<double> coeff(num_views, 1.0 / static_cast<double>(num_views));
  if (mode == ViewWeighting::kUniform) return coeff;
  if (mode == ViewWeighting::kAmgl) {
    for (std::size_t v = 0; v < num_views; ++v) {
      coeff[v] = 0.5 / std::sqrt(std::max(h[v], kTraceFloor));
    }
  } else {
    const double exponent = 1.0 / (1.0 - gamma);
    double total = 0.0;
    std::vector<double> alpha(num_views);
    for (std::size_t v = 0; v < num_views; ++v) {
      alpha[v] = std::pow(std::max(h[v], kTraceFloor), exponent);
      total += alpha[v];
    }
    for (std::size_t v = 0; v < num_views; ++v) {
      coeff[v] = std::pow(alpha[v] / total, gamma);
    }
  }
  double cmax = 0.0;
  for (double c : coeff) cmax = std::max(cmax, c);
  if (cmax > 0.0) {
    for (double& c : coeff) c = std::max(c, kCoefficientFloorRatio * cmax);
  }
  return coeff;
}

}  // namespace

StatusOr<TwoStageResult> TwoStageMVSC(const MultiViewGraphs& graphs,
                                      const TwoStageOptions& options) {
  const std::size_t num_views = graphs.laplacians.size();
  const std::size_t n = graphs.NumSamples();
  const std::size_t c = options.num_clusters;
  if (num_views == 0) {
    return Status::InvalidArgument("TwoStageMVSC requires at least one view");
  }
  if (c < 2 || c >= n) {
    return Status::InvalidArgument("TwoStageMVSC requires 2 <= c < n");
  }
  if (options.weighting == ViewWeighting::kGammaPower && options.gamma <= 1.0) {
    return Status::InvalidArgument("gamma-power weighting requires gamma > 1");
  }

  la::LanczosOptions lanczos;
  lanczos.seed = options.seed + 17;
  lanczos.max_subspace = std::min(n, std::max<std::size_t>(12 * c + 100, 250));
  lanczos.tolerance = 3e-6;

  // Per-view spectral floors for the kExcess smoothness normalization (see
  // unified.h — discounts each view's own achievable optimum so fragmented
  // graphs cannot soak up weight).
  std::vector<double> floors(num_views, 0.0);
  if (options.smoothness == SmoothnessNormalization::kExcess) {
    for (std::size_t v = 0; v < num_views; ++v) {
      StatusOr<la::SymEigenResult> eig =
          la::LanczosSmallest(graphs.laplacians[v], c, 2.0 + 1e-9, lanczos);
      if (!eig.ok()) return eig.status();
      for (std::size_t j = 0; j < c; ++j) {
        floors[v] += std::max(0.0, eig->eigenvalues[j]);
      }
    }
  }

  // Stage 1: alternate the continuous embedding and the view weights.
  std::vector<double> coeff(num_views, 1.0 / static_cast<double>(num_views));
  la::Matrix f;
  double prev_obj = std::numeric_limits<double>::infinity();
  std::size_t iterations = 0;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // See MassNormalizedCombination: identical eigenvectors on complete
    // data, well-conditioned bottom spectrum on incomplete data.
    la::CsrMatrix combined = MassNormalizedCombination(graphs.laplacians, coeff);
    StatusOr<la::SymEigenResult> eig = la::LanczosSmallest(
        combined, c, cluster::GershgorinUpperBound(combined) + 1e-9, lanczos);
    if (!eig.ok()) return eig.status();
    f = std::move(eig->eigenvectors);

    std::vector<double> h(num_views);
    double obj = 0.0;
    for (std::size_t v = 0; v < num_views; ++v) {
      h[v] = std::max(kTraceFloor,
                      la::QuadraticTrace(graphs.laplacians[v], f) - floors[v]);
      obj += coeff[v] * h[v];
    }
    coeff = Coefficients(h, options.weighting, options.gamma);
    iterations = iter + 1;
    if (iter > 0 && std::fabs(prev_obj - obj) <=
                        options.tolerance * std::max(std::fabs(prev_obj), 1e-12)) {
      break;
    }
    prev_obj = obj;
  }

  // Stage 2: K-means on the row-normalized embedding — the step the
  // unified method eliminates.
  la::Matrix normalized = f;
  for (std::size_t i = 0; i < n; ++i) {
    double norm = 0.0;
    for (std::size_t j = 0; j < c; ++j) norm += normalized(i, j) * normalized(i, j);
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (std::size_t j = 0; j < c; ++j) normalized(i, j) /= norm;
    }
  }
  cluster::KMeansOptions km;
  km.num_clusters = c;
  km.restarts = options.kmeans_restarts;
  km.seed = options.seed;
  StatusOr<cluster::KMeansResult> clustered = cluster::KMeans(normalized, km);
  if (!clustered.ok()) return clustered.status();

  TwoStageResult out;
  out.labels = std::move(clustered->labels);
  out.embedding = std::move(f);
  out.iterations = iterations;
  // Report normalized coefficients as weights.
  double total = 0.0;
  for (double w : coeff) total += w;
  out.view_weights.resize(num_views);
  for (std::size_t v = 0; v < num_views; ++v) {
    out.view_weights[v] = total > 0.0 ? coeff[v] / total : 1.0 / num_views;
  }
  return out;
}

}  // namespace umvsc::mvsc
