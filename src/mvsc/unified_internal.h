#ifndef UMVSC_MVSC_UNIFIED_INTERNAL_H_
#define UMVSC_MVSC_UNIFIED_INTERNAL_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "la/lanczos.h"
#include "la/matrix.h"
#include "la/sparse.h"
#include "mvsc/unified.h"

namespace umvsc::mvsc::internal {

/// Shared building blocks of the unified solver, used by BOTH the exact
/// n-row path (unified.cc) and the reduced anchor path (anchor_unified.cc).
/// The two paths must keep identical update semantics — α-step, floors,
/// discretization repair — so the blocks live here instead of being
/// duplicated. Nothing outside mvsc/ should include this header.

/// Per-view smoothness h_v = Tr(Fᵀ L_v F) − offsets[v], floored away from
/// zero. View-parallel with write-disjoint slots; bitwise deterministic.
std::vector<double> ViewSmoothness(const std::vector<la::CsrMatrix>& laplacians,
                                   const la::Matrix& f,
                                   const std::vector<double>& offsets);

/// Smallest-eigenpairs dispatch through the measured block/single policy.
StatusOr<la::SymEigenResult> SmallestEigenpairsSparse(
    const la::CsrMatrix& lap, std::size_t c, double spectral_bound,
    const la::LanczosOptions& options, la::EigensolveMode mode);

/// ĉ_v per view: the sum of the c smallest eigenvalues of L_v. Requires
/// every L_v spectrum within [0, 2] (normalized Laplacians and their
/// reduced-space compressions both satisfy this).
StatusOr<std::vector<double>> SpectralFloors(
    const std::vector<la::CsrMatrix>& laplacians, std::size_t c,
    const la::LanczosOptions& lanczos, la::EigensolveMode block_lanczos,
    std::size_t* matvec_total);

/// {normalized α for reporting, Laplacian combination coefficients}.
struct Weights {
  std::vector<double> alpha;
  std::vector<double> coefficients;
};

/// Closed-form α-step for every weighting mode, with the small-coefficient
/// floor that keeps fragmented views from absorbing the whole null space.
Weights UpdateWeights(const std::vector<double>& h, ViewWeighting mode,
                      double gamma);

/// Row-argmax discretization with empty-cluster repair (ties keep the
/// smaller column index; an empty column steals the best row among clusters
/// that keep >= 2 members).
std::vector<std::size_t> DiscretizeRows(const la::Matrix& fr,
                                        std::size_t num_clusters);

}  // namespace umvsc::mvsc::internal

#endif  // UMVSC_MVSC_UNIFIED_INTERNAL_H_
