#ifndef UMVSC_MVSC_MULTI_NMF_H_
#define UMVSC_MVSC_MULTI_NMF_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "la/matrix.h"

namespace umvsc::mvsc {

/// Options for multi-view NMF.
struct MultiNmfOptions {
  std::size_t num_clusters = 2;
  /// Consensus-coupling strength λ.
  double lambda = 0.1;
  std::size_t max_iterations = 100;
  double tolerance = 1e-5;
  std::size_t kmeans_restarts = 10;
  std::uint64_t seed = 0;
};

/// Result of multi-view NMF.
struct MultiNmfResult {
  std::vector<std::size_t> labels;
  /// Consensus representation W* (n × c, nonnegative).
  la::Matrix consensus;
  std::vector<la::Matrix> view_factors;  ///< per-view W_v
  double objective = 0.0;
  std::size_t iterations = 0;
};

/// Multi-view NMF with a consensus coefficient matrix (the MultiNMF family
/// of Liu et al., SDM 2013): per view, X_v ≈ W_v·H_v with all factors
/// nonnegative, and the W_v are pulled toward a shared W*:
///
///   min Σ_v ‖X_v − W_v H_v‖²_F + λ·Σ_v ‖W_v − W*‖²_F,  all factors ≥ 0.
///
/// Multiplicative updates for H_v and W_v (the λ term adds λW* to the
/// numerator and λW_v to the denominator of the W update, preserving
/// nonnegativity and monotonicity), closed-form W* = mean_v W_v. Views are
/// shifted to be nonnegative per feature before factorization. Final labels
/// by K-means on the rows of W*.
StatusOr<MultiNmfResult> MultiViewNmf(const data::MultiViewDataset& dataset,
                                      const MultiNmfOptions& options);

}  // namespace umvsc::mvsc

#endif  // UMVSC_MVSC_MULTI_NMF_H_
