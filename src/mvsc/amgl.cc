#include "mvsc/amgl.h"

#include "mvsc/two_stage.h"

namespace umvsc::mvsc {

StatusOr<AmglResult> Amgl(const MultiViewGraphs& graphs,
                          const AmglOptions& options) {
  // AMGL is exactly the two-stage pipeline under the parameter-free
  // self-weighting; delegate so both share one tested implementation.
  TwoStageOptions two_stage;
  two_stage.num_clusters = options.num_clusters;
  two_stage.weighting = ViewWeighting::kAmgl;
  two_stage.max_iterations = options.max_iterations;
  two_stage.tolerance = options.tolerance;
  two_stage.kmeans_restarts = options.kmeans_restarts;
  two_stage.seed = options.seed;
  StatusOr<TwoStageResult> result = TwoStageMVSC(graphs, two_stage);
  if (!result.ok()) return result.status();

  AmglResult out;
  out.labels = std::move(result->labels);
  out.embedding = std::move(result->embedding);
  out.view_weights = std::move(result->view_weights);
  out.iterations = result->iterations;
  return out;
}

}  // namespace umvsc::mvsc
