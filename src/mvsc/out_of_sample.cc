#include "mvsc/out_of_sample.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"
#include "data/standardize.h"
#include "graph/distance.h"
#include "mvsc/anchor_assign.h"

namespace umvsc::mvsc {

using data::ApplyStandardization;
using data::ColumnStandardization;

StatusOr<OutOfSampleModel> OutOfSampleModel::Fit(
    const data::MultiViewDataset& training,
    const std::vector<std::size_t>& labels,
    const std::vector<double>& view_weights,
    const OutOfSampleOptions& options) {
  UMVSC_RETURN_IF_ERROR(training.Validate());
  const std::size_t n = training.NumSamples();
  const std::size_t num_views = training.NumViews();
  if (labels.size() != n) {
    return Status::InvalidArgument("label count must match training samples");
  }
  if (view_weights.size() != num_views) {
    return Status::InvalidArgument("one view weight per view required");
  }
  for (double w : view_weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("view weights must be nonnegative");
    }
  }
  if (options.knn < 1 || options.knn >= n) {
    return Status::InvalidArgument("out-of-sample knn must satisfy 1 <= k < n");
  }

  OutOfSampleModel model;
  model.options_ = options;
  model.labels_ = labels;
  model.view_weights_ = view_weights;
  model.num_clusters_ = *std::max_element(labels.begin(), labels.end()) + 1;

  for (std::size_t v = 0; v < num_views; ++v) {
    la::Vector means, inv_stds;
    ColumnStandardization(training.views[v], &means, &inv_stds);
    la::Matrix standardized =
        ApplyStandardization(training.views[v], means, inv_stds);
    // Self-tuning bandwidth per training point: distance to its k-th NN.
    la::Matrix sq = graph::PairwiseSquaredDistances(standardized);
    la::Vector scales(n);
    std::vector<double> row;
    for (std::size_t i = 0; i < n; ++i) {
      row.clear();
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) row.push_back(sq(i, j));
      }
      std::nth_element(row.begin(), row.begin() + (options.knn - 1), row.end());
      scales[i] = std::sqrt(std::max(row[options.knn - 1], 1e-300));
    }
    model.views_.push_back(std::move(standardized));
    model.feature_means_.push_back(std::move(means));
    model.feature_inv_stds_.push_back(std::move(inv_stds));
    model.train_scales_.push_back(std::move(scales));
  }
  return model;
}

StatusOr<OutOfSampleModel> OutOfSampleModel::FitAnchor(AnchorModel model) {
  if (model.views.empty()) {
    return Status::InvalidArgument("anchor model has no views");
  }
  if (model.num_clusters < 2) {
    return Status::InvalidArgument("anchor model needs at least two clusters");
  }
  if (model.assignment.rows() == 0 ||
      model.assignment.cols() != model.num_clusters) {
    return Status::InvalidArgument(
        "anchor model assignment must have one column per cluster");
  }
  std::size_t total_dims = 0;
  for (std::size_t v = 0; v < model.views.size(); ++v) {
    const AnchorViewModel& view = model.views[v];
    const std::size_t m = view.anchors.rows();
    if (m == 0 || view.anchors.cols() == 0) {
      return Status::InvalidArgument(
          StrFormat("anchor model view %zu has no anchors", v));
    }
    if (view.anchor_map.rows() != m || view.anchor_map.cols() == 0) {
      return Status::InvalidArgument(
          StrFormat("anchor model view %zu map must have one row per anchor",
                    v));
    }
    if (view.feature_means.size() != view.anchors.cols() ||
        view.feature_inv_stds.size() != view.anchors.cols()) {
      return Status::InvalidArgument(
          StrFormat("anchor model view %zu standardization size mismatch", v));
    }
    if (model.anchor_neighbors < 1 || model.anchor_neighbors > m) {
      return Status::InvalidArgument(
          StrFormat("anchor model neighbors must satisfy 1 <= s <= %zu", m));
    }
    total_dims += view.anchor_map.cols();
  }
  if (model.assignment.rows() != total_dims) {
    return Status::InvalidArgument(
        "anchor model assignment rows must match concatenated view dims");
  }

  OutOfSampleModel out;
  out.num_clusters_ = model.num_clusters;
  out.anchor_model_ = std::move(model);
  // Cache ‖a_j‖² per view for the Gram-expansion serving distances (the
  // same ascending-feature convention the training-side panel used).
  out.anchor_sq_norms_.reserve(out.anchor_model_->views.size());
  for (const AnchorViewModel& view : out.anchor_model_->views) {
    out.anchor_sq_norms_.push_back(graph::RowSquaredNorms(view.anchors));
  }
  return out;
}

StatusOr<std::vector<std::size_t>> OutOfSampleModel::Predict(
    const data::MultiViewDataset& batch) const {
  UMVSC_RETURN_IF_ERROR(batch.Validate());
  if (anchor_model_) {
    const AnchorModel& model = *anchor_model_;
    if (batch.NumViews() != model.views.size()) {
      return Status::InvalidArgument(
          StrFormat("batch has %zu views, model expects %zu", batch.NumViews(),
                    model.views.size()));
    }
    for (std::size_t v = 0; v < model.views.size(); ++v) {
      if (batch.views[v].cols() != model.views[v].anchors.cols()) {
        return Status::InvalidArgument(
            StrFormat("view %zu has %zu features, model expects %zu", v,
                      batch.views[v].cols(), model.views[v].anchors.cols()));
      }
    }
    const std::size_t count = batch.NumSamples();
    std::vector<std::size_t> predictions(count, 0);
    // Scratch hoisted out of the point loop and reused — the serial path
    // allocates nothing per point.
    const std::size_t s = model.anchor_neighbors;
    std::size_t max_d = 0, max_m = 0;
    for (const AnchorViewModel& view : model.views) {
      max_d = std::max(max_d, view.anchors.cols());
      max_m = std::max(max_m, view.anchors.rows());
    }
    std::vector<double> x_std(max_d);
    std::vector<double> d2(max_m);
    std::vector<double> weights(s);
    std::vector<std::size_t> sel_cols(s);
    std::vector<double> coords(model.assignment.rows());
    std::vector<double> scores(model.num_clusters);
    for (std::size_t i = 0; i < count; ++i) {
      std::fill(coords.begin(), coords.end(), 0.0);
      std::size_t base = 0;
      for (std::size_t v = 0; v < model.views.size(); ++v) {
        const AnchorViewModel& view = model.views[v];
        const la::Vector& a_norms = anchor_sq_norms_[v];
        const std::size_t d = view.anchors.cols();
        const std::size_t m = view.anchors.rows();
        data::ApplyStandardizationRow(batch.views[v].RowPtr(i), d,
                                      view.feature_means,
                                      view.feature_inv_stds, x_std.data());
        // Gram-expansion distances on the GemmAdd kc grid — one bit pattern
        // shared with the batched dot panel of serve::BatchAssigner.
        const double nx = assign::RowSquaredNorm(x_std.data(), d);
        for (std::size_t j = 0; j < m; ++j) {
          const double dot =
              assign::BlockedDot(x_std.data(), view.anchors.RowPtr(j), d);
          d2[j] = assign::SquaredFromDot(nx, a_norms[j], dot);
        }
        assign::SelectAnchorRow(d2.data(), m, s, sel_cols.data(),
                                weights.data());
        // u = z·anchor_map in ascending-anchor order — the element order of
        // the batched SpMM (CsrMatrix::MultiplyInto).
        const std::size_t k = view.anchor_map.cols();
        double* u = coords.data() + base;
        for (std::size_t r = 0; r < s; ++r) {
          const double* map_row = view.anchor_map.RowPtr(sel_cols[r]);
          const double w = weights[r];
          for (std::size_t t = 0; t < k; ++t) u[t] += w * map_row[t];
        }
        base += k;
      }
      // scores = u·assignment on the same kc grid as the batched MatMul;
      // strict `>` keeps the smaller cluster index on ties, as
      // DiscretizeRows does.
      std::fill(scores.begin(), scores.end(), 0.0);
      assign::BlockedVecMatAdd(coords.data(), model.assignment,
                               scores.data());
      predictions[i] = assign::RowArgMax(scores.data(), model.num_clusters);
    }
    return predictions;
  }
  if (batch.NumViews() != views_.size()) {
    return Status::InvalidArgument(
        StrFormat("batch has %zu views, model expects %zu", batch.NumViews(),
                  views_.size()));
  }
  for (std::size_t v = 0; v < views_.size(); ++v) {
    if (batch.views[v].cols() != views_[v].cols()) {
      return Status::InvalidArgument(
          StrFormat("view %zu has %zu features, model expects %zu", v,
                    batch.views[v].cols(), views_[v].cols()));
    }
  }

  const std::size_t m = batch.NumSamples();
  const std::size_t n = views_.front().rows();
  const std::size_t k = options_.knn;
  std::vector<std::size_t> predictions(m, 0);

  // Fused affinity of each new point to every training point.
  la::Matrix fused(m, n);
  for (std::size_t v = 0; v < views_.size(); ++v) {
    if (view_weights_[v] == 0.0) continue;
    la::Matrix x = ApplyStandardization(batch.views[v], feature_means_[v],
                                        feature_inv_stds_[v]);
    const la::Matrix& train = views_[v];
    for (std::size_t i = 0; i < m; ++i) {
      // Squared distances from new point i to all training points.
      la::Vector d2(n);
      const double* xi = x.RowPtr(i);
      for (std::size_t t = 0; t < n; ++t) {
        const double* tr = train.RowPtr(t);
        double s = 0.0;
        for (std::size_t j = 0; j < train.cols(); ++j) {
          const double diff = xi[j] - tr[j];
          s += diff * diff;
        }
        d2[t] = s;
      }
      // Self-tuning bandwidth of the new point: its k-th NN distance.
      std::vector<double> copy(d2.begin(), d2.end());
      std::nth_element(copy.begin(), copy.begin() + (k - 1), copy.end());
      const double own_scale = std::sqrt(std::max(copy[k - 1], 1e-300));
      double* out = fused.RowPtr(i);
      for (std::size_t t = 0; t < n; ++t) {
        out[t] += view_weights_[v] *
                  std::exp(-d2[t] / (own_scale * train_scales_[v][t]));
      }
    }
  }

  // Vote: strongest fused affinity mass among the k nearest training points.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < m; ++i) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    const double* row = fused.RowPtr(i);
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&](std::size_t a, std::size_t b) {
                        return row[a] > row[b];
                      });
    std::vector<double> votes(num_clusters_, 0.0);
    for (std::size_t a = 0; a < k; ++a) {
      votes[labels_[order[a]]] += row[order[a]];
    }
    predictions[i] = static_cast<std::size_t>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
  }
  return predictions;
}

}  // namespace umvsc::mvsc
