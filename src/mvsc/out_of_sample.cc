#include "mvsc/out_of_sample.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"
#include "graph/distance.h"

namespace umvsc::mvsc {

namespace {

// Per-feature mean and inverse standard deviation of a matrix's columns.
void ColumnStats(const la::Matrix& m, la::Vector* means, la::Vector* inv_stds) {
  const std::size_t n = m.rows(), d = m.cols();
  *means = la::Vector(d);
  *inv_stds = la::Vector(d);
  for (std::size_t j = 0; j < d; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) mean += m(i, j);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double centered = m(i, j) - mean;
      var += centered * centered;
    }
    var /= static_cast<double>(n);
    (*means)[j] = mean;
    (*inv_stds)[j] = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
  }
}

la::Matrix ApplyStandardization(const la::Matrix& m, const la::Vector& means,
                                const la::Vector& inv_stds) {
  la::Matrix out = m;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    double* row = out.RowPtr(i);
    for (std::size_t j = 0; j < out.cols(); ++j) {
      row[j] = (row[j] - means[j]) * inv_stds[j];
    }
  }
  return out;
}

// One point's reduced coordinates in one view of an anchor model: the exact
// row rule of graph::BuildAnchorAffinity — s nearest anchors (ties keep the
// smaller anchor index), self-tuning bandwidth = own s-th-nearest squared
// distance, Gaussian weights normalized in rank order — then u = z·anchor_map
// accumulated in ascending-anchor order, matching the training SpMM.
// `row` must already be standardized; appends k_v values to `coords`.
void AnchorViewCoordinates(const AnchorViewModel& view, std::size_t s,
                           const double* row, std::vector<double>* coords) {
  const std::size_t m = view.anchors.rows();
  const std::size_t d = view.anchors.cols();
  // Bounded s-best selection, ascending distance, ties to the smaller index.
  std::vector<double> best_d2(s, 0.0);
  std::vector<std::size_t> best_j(s, 0);
  std::size_t filled = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const double* aj = view.anchors.RowPtr(j);
    double d2 = 0.0;
    for (std::size_t p = 0; p < d; ++p) {
      const double diff = row[p] - aj[p];
      d2 += diff * diff;
    }
    if (filled == s && d2 >= best_d2[s - 1]) continue;
    std::size_t q = filled < s ? filled : s - 1;
    while (q > 0 && best_d2[q - 1] > d2) {
      best_d2[q] = best_d2[q - 1];
      best_j[q] = best_j[q - 1];
      --q;
    }
    best_d2[q] = d2;
    best_j[q] = j;
    if (filled < s) ++filled;
  }
  // Weights in rank order (the bandwidth is the worst kept distance) …
  const double sigma2 = std::max(best_d2[s - 1], 1e-300);
  std::vector<double> w(s);
  double sum = 0.0;
  for (std::size_t r = 0; r < s; ++r) {
    w[r] = std::exp(-best_d2[r] / sigma2);
    sum += w[r];
  }
  const double inv = 1.0 / sum;
  for (std::size_t r = 0; r < s; ++r) w[r] *= inv;
  // … then ascending-anchor accumulation order, as the training SpMM uses.
  for (std::size_t r = 1; r < s; ++r) {
    const std::size_t jr = best_j[r];
    const double wr = w[r];
    std::size_t q = r;
    while (q > 0 && best_j[q - 1] > jr) {
      best_j[q] = best_j[q - 1];
      w[q] = w[q - 1];
      --q;
    }
    best_j[q] = jr;
    w[q] = wr;
  }
  const std::size_t k = view.anchor_map.cols();
  const std::size_t base = coords->size();
  coords->resize(base + k, 0.0);
  for (std::size_t r = 0; r < s; ++r) {
    const double* map_row = view.anchor_map.RowPtr(best_j[r]);
    for (std::size_t t = 0; t < k; ++t) {
      (*coords)[base + t] += w[r] * map_row[t];
    }
  }
}

}  // namespace

StatusOr<OutOfSampleModel> OutOfSampleModel::Fit(
    const data::MultiViewDataset& training,
    const std::vector<std::size_t>& labels,
    const std::vector<double>& view_weights,
    const OutOfSampleOptions& options) {
  UMVSC_RETURN_IF_ERROR(training.Validate());
  const std::size_t n = training.NumSamples();
  const std::size_t num_views = training.NumViews();
  if (labels.size() != n) {
    return Status::InvalidArgument("label count must match training samples");
  }
  if (view_weights.size() != num_views) {
    return Status::InvalidArgument("one view weight per view required");
  }
  for (double w : view_weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("view weights must be nonnegative");
    }
  }
  if (options.knn < 1 || options.knn >= n) {
    return Status::InvalidArgument("out-of-sample knn must satisfy 1 <= k < n");
  }

  OutOfSampleModel model;
  model.options_ = options;
  model.labels_ = labels;
  model.view_weights_ = view_weights;
  model.num_clusters_ = *std::max_element(labels.begin(), labels.end()) + 1;

  for (std::size_t v = 0; v < num_views; ++v) {
    la::Vector means, inv_stds;
    ColumnStats(training.views[v], &means, &inv_stds);
    la::Matrix standardized =
        ApplyStandardization(training.views[v], means, inv_stds);
    // Self-tuning bandwidth per training point: distance to its k-th NN.
    la::Matrix sq = graph::PairwiseSquaredDistances(standardized);
    la::Vector scales(n);
    std::vector<double> row;
    for (std::size_t i = 0; i < n; ++i) {
      row.clear();
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) row.push_back(sq(i, j));
      }
      std::nth_element(row.begin(), row.begin() + (options.knn - 1), row.end());
      scales[i] = std::sqrt(std::max(row[options.knn - 1], 1e-300));
    }
    model.views_.push_back(std::move(standardized));
    model.feature_means_.push_back(std::move(means));
    model.feature_inv_stds_.push_back(std::move(inv_stds));
    model.train_scales_.push_back(std::move(scales));
  }
  return model;
}

StatusOr<OutOfSampleModel> OutOfSampleModel::FitAnchor(AnchorModel model) {
  if (model.views.empty()) {
    return Status::InvalidArgument("anchor model has no views");
  }
  if (model.num_clusters < 2) {
    return Status::InvalidArgument("anchor model needs at least two clusters");
  }
  if (model.assignment.rows() == 0 ||
      model.assignment.cols() != model.num_clusters) {
    return Status::InvalidArgument(
        "anchor model assignment must have one column per cluster");
  }
  std::size_t total_dims = 0;
  for (std::size_t v = 0; v < model.views.size(); ++v) {
    const AnchorViewModel& view = model.views[v];
    const std::size_t m = view.anchors.rows();
    if (m == 0 || view.anchors.cols() == 0) {
      return Status::InvalidArgument(
          StrFormat("anchor model view %zu has no anchors", v));
    }
    if (view.anchor_map.rows() != m || view.anchor_map.cols() == 0) {
      return Status::InvalidArgument(
          StrFormat("anchor model view %zu map must have one row per anchor",
                    v));
    }
    if (view.feature_means.size() != view.anchors.cols() ||
        view.feature_inv_stds.size() != view.anchors.cols()) {
      return Status::InvalidArgument(
          StrFormat("anchor model view %zu standardization size mismatch", v));
    }
    if (model.anchor_neighbors < 1 || model.anchor_neighbors > m) {
      return Status::InvalidArgument(
          StrFormat("anchor model neighbors must satisfy 1 <= s <= %zu", m));
    }
    total_dims += view.anchor_map.cols();
  }
  if (model.assignment.rows() != total_dims) {
    return Status::InvalidArgument(
        "anchor model assignment rows must match concatenated view dims");
  }

  OutOfSampleModel out;
  out.num_clusters_ = model.num_clusters;
  out.anchor_model_ = std::move(model);
  return out;
}

StatusOr<std::vector<std::size_t>> OutOfSampleModel::Predict(
    const data::MultiViewDataset& batch) const {
  UMVSC_RETURN_IF_ERROR(batch.Validate());
  if (anchor_model_) {
    const AnchorModel& model = *anchor_model_;
    if (batch.NumViews() != model.views.size()) {
      return Status::InvalidArgument(
          StrFormat("batch has %zu views, model expects %zu", batch.NumViews(),
                    model.views.size()));
    }
    for (std::size_t v = 0; v < model.views.size(); ++v) {
      if (batch.views[v].cols() != model.views[v].anchors.cols()) {
        return Status::InvalidArgument(
            StrFormat("view %zu has %zu features, model expects %zu", v,
                      batch.views[v].cols(), model.views[v].anchors.cols()));
      }
    }
    const std::size_t count = batch.NumSamples();
    std::vector<std::size_t> predictions(count, 0);
    std::vector<double> coords;
    std::vector<double> point;
    for (std::size_t i = 0; i < count; ++i) {
      coords.clear();
      for (std::size_t v = 0; v < model.views.size(); ++v) {
        const AnchorViewModel& view = model.views[v];
        const std::size_t d = view.anchors.cols();
        point.resize(d);
        const double* raw = batch.views[v].RowPtr(i);
        for (std::size_t j = 0; j < d; ++j) {
          point[j] =
              (raw[j] - view.feature_means[j]) * view.feature_inv_stds[j];
        }
        AnchorViewCoordinates(view, model.anchor_neighbors, point.data(),
                              &coords);
      }
      // scores = u · assignment, accumulated over rows in ascending order so
      // the sum matches the training-side matrix product; strict `>` keeps
      // the smaller cluster index on ties, as DiscretizeRows does.
      std::vector<double> scores(model.num_clusters, 0.0);
      for (std::size_t t = 0; t < coords.size(); ++t) {
        const double u = coords[t];
        const double* arow = model.assignment.RowPtr(t);
        for (std::size_t j = 0; j < model.num_clusters; ++j) {
          scores[j] += u * arow[j];
        }
      }
      std::size_t best = 0;
      for (std::size_t j = 1; j < model.num_clusters; ++j) {
        if (scores[j] > scores[best]) best = j;
      }
      predictions[i] = best;
    }
    return predictions;
  }
  if (batch.NumViews() != views_.size()) {
    return Status::InvalidArgument(
        StrFormat("batch has %zu views, model expects %zu", batch.NumViews(),
                  views_.size()));
  }
  for (std::size_t v = 0; v < views_.size(); ++v) {
    if (batch.views[v].cols() != views_[v].cols()) {
      return Status::InvalidArgument(
          StrFormat("view %zu has %zu features, model expects %zu", v,
                    batch.views[v].cols(), views_[v].cols()));
    }
  }

  const std::size_t m = batch.NumSamples();
  const std::size_t n = views_.front().rows();
  const std::size_t k = options_.knn;
  std::vector<std::size_t> predictions(m, 0);

  // Fused affinity of each new point to every training point.
  la::Matrix fused(m, n);
  for (std::size_t v = 0; v < views_.size(); ++v) {
    if (view_weights_[v] == 0.0) continue;
    la::Matrix x = ApplyStandardization(batch.views[v], feature_means_[v],
                                        feature_inv_stds_[v]);
    const la::Matrix& train = views_[v];
    for (std::size_t i = 0; i < m; ++i) {
      // Squared distances from new point i to all training points.
      la::Vector d2(n);
      const double* xi = x.RowPtr(i);
      for (std::size_t t = 0; t < n; ++t) {
        const double* tr = train.RowPtr(t);
        double s = 0.0;
        for (std::size_t j = 0; j < train.cols(); ++j) {
          const double diff = xi[j] - tr[j];
          s += diff * diff;
        }
        d2[t] = s;
      }
      // Self-tuning bandwidth of the new point: its k-th NN distance.
      std::vector<double> copy(d2.begin(), d2.end());
      std::nth_element(copy.begin(), copy.begin() + (k - 1), copy.end());
      const double own_scale = std::sqrt(std::max(copy[k - 1], 1e-300));
      double* out = fused.RowPtr(i);
      for (std::size_t t = 0; t < n; ++t) {
        out[t] += view_weights_[v] *
                  std::exp(-d2[t] / (own_scale * train_scales_[v][t]));
      }
    }
  }

  // Vote: strongest fused affinity mass among the k nearest training points.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < m; ++i) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    const double* row = fused.RowPtr(i);
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&](std::size_t a, std::size_t b) {
                        return row[a] > row[b];
                      });
    std::vector<double> votes(num_clusters_, 0.0);
    for (std::size_t a = 0; a < k; ++a) {
      votes[labels_[order[a]]] += row[order[a]];
    }
    predictions[i] = static_cast<std::size_t>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
  }
  return predictions;
}

}  // namespace umvsc::mvsc
