#include "mvsc/out_of_sample.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"
#include "graph/distance.h"

namespace umvsc::mvsc {

namespace {

// Per-feature mean and inverse standard deviation of a matrix's columns.
void ColumnStats(const la::Matrix& m, la::Vector* means, la::Vector* inv_stds) {
  const std::size_t n = m.rows(), d = m.cols();
  *means = la::Vector(d);
  *inv_stds = la::Vector(d);
  for (std::size_t j = 0; j < d; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) mean += m(i, j);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double centered = m(i, j) - mean;
      var += centered * centered;
    }
    var /= static_cast<double>(n);
    (*means)[j] = mean;
    (*inv_stds)[j] = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
  }
}

la::Matrix ApplyStandardization(const la::Matrix& m, const la::Vector& means,
                                const la::Vector& inv_stds) {
  la::Matrix out = m;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    double* row = out.RowPtr(i);
    for (std::size_t j = 0; j < out.cols(); ++j) {
      row[j] = (row[j] - means[j]) * inv_stds[j];
    }
  }
  return out;
}

}  // namespace

StatusOr<OutOfSampleModel> OutOfSampleModel::Fit(
    const data::MultiViewDataset& training,
    const std::vector<std::size_t>& labels,
    const std::vector<double>& view_weights,
    const OutOfSampleOptions& options) {
  UMVSC_RETURN_IF_ERROR(training.Validate());
  const std::size_t n = training.NumSamples();
  const std::size_t num_views = training.NumViews();
  if (labels.size() != n) {
    return Status::InvalidArgument("label count must match training samples");
  }
  if (view_weights.size() != num_views) {
    return Status::InvalidArgument("one view weight per view required");
  }
  for (double w : view_weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("view weights must be nonnegative");
    }
  }
  if (options.knn < 1 || options.knn >= n) {
    return Status::InvalidArgument("out-of-sample knn must satisfy 1 <= k < n");
  }

  OutOfSampleModel model;
  model.options_ = options;
  model.labels_ = labels;
  model.view_weights_ = view_weights;
  model.num_clusters_ = *std::max_element(labels.begin(), labels.end()) + 1;

  for (std::size_t v = 0; v < num_views; ++v) {
    la::Vector means, inv_stds;
    ColumnStats(training.views[v], &means, &inv_stds);
    la::Matrix standardized =
        ApplyStandardization(training.views[v], means, inv_stds);
    // Self-tuning bandwidth per training point: distance to its k-th NN.
    la::Matrix sq = graph::PairwiseSquaredDistances(standardized);
    la::Vector scales(n);
    std::vector<double> row;
    for (std::size_t i = 0; i < n; ++i) {
      row.clear();
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) row.push_back(sq(i, j));
      }
      std::nth_element(row.begin(), row.begin() + (options.knn - 1), row.end());
      scales[i] = std::sqrt(std::max(row[options.knn - 1], 1e-300));
    }
    model.views_.push_back(std::move(standardized));
    model.feature_means_.push_back(std::move(means));
    model.feature_inv_stds_.push_back(std::move(inv_stds));
    model.train_scales_.push_back(std::move(scales));
  }
  return model;
}

StatusOr<std::vector<std::size_t>> OutOfSampleModel::Predict(
    const data::MultiViewDataset& batch) const {
  UMVSC_RETURN_IF_ERROR(batch.Validate());
  if (batch.NumViews() != views_.size()) {
    return Status::InvalidArgument(
        StrFormat("batch has %zu views, model expects %zu", batch.NumViews(),
                  views_.size()));
  }
  for (std::size_t v = 0; v < views_.size(); ++v) {
    if (batch.views[v].cols() != views_[v].cols()) {
      return Status::InvalidArgument(
          StrFormat("view %zu has %zu features, model expects %zu", v,
                    batch.views[v].cols(), views_[v].cols()));
    }
  }

  const std::size_t m = batch.NumSamples();
  const std::size_t n = views_.front().rows();
  const std::size_t k = options_.knn;
  std::vector<std::size_t> predictions(m, 0);

  // Fused affinity of each new point to every training point.
  la::Matrix fused(m, n);
  for (std::size_t v = 0; v < views_.size(); ++v) {
    if (view_weights_[v] == 0.0) continue;
    la::Matrix x = ApplyStandardization(batch.views[v], feature_means_[v],
                                        feature_inv_stds_[v]);
    const la::Matrix& train = views_[v];
    for (std::size_t i = 0; i < m; ++i) {
      // Squared distances from new point i to all training points.
      la::Vector d2(n);
      const double* xi = x.RowPtr(i);
      for (std::size_t t = 0; t < n; ++t) {
        const double* tr = train.RowPtr(t);
        double s = 0.0;
        for (std::size_t j = 0; j < train.cols(); ++j) {
          const double diff = xi[j] - tr[j];
          s += diff * diff;
        }
        d2[t] = s;
      }
      // Self-tuning bandwidth of the new point: its k-th NN distance.
      std::vector<double> copy(d2.begin(), d2.end());
      std::nth_element(copy.begin(), copy.begin() + (k - 1), copy.end());
      const double own_scale = std::sqrt(std::max(copy[k - 1], 1e-300));
      double* out = fused.RowPtr(i);
      for (std::size_t t = 0; t < n; ++t) {
        out[t] += view_weights_[v] *
                  std::exp(-d2[t] / (own_scale * train_scales_[v][t]));
      }
    }
  }

  // Vote: strongest fused affinity mass among the k nearest training points.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < m; ++i) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    const double* row = fused.RowPtr(i);
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&](std::size_t a, std::size_t b) {
                        return row[a] > row[b];
                      });
    std::vector<double> votes(num_clusters_, 0.0);
    for (std::size_t a = 0; a < k; ++a) {
      votes[labels_[order[a]]] += row[order[a]];
    }
    predictions[i] = static_cast<std::size_t>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
  }
  return predictions;
}

}  // namespace umvsc::mvsc
