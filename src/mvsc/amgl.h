#ifndef UMVSC_MVSC_AMGL_H_
#define UMVSC_MVSC_AMGL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "mvsc/graphs.h"

namespace umvsc::mvsc {

/// Options for AMGL.
struct AmglOptions {
  std::size_t num_clusters = 2;
  std::size_t max_iterations = 20;
  double tolerance = 1e-6;
  std::size_t kmeans_restarts = 10;
  std::uint64_t seed = 0;
};

/// Result of AMGL.
struct AmglResult {
  std::vector<std::size_t> labels;
  la::Matrix embedding;
  std::vector<double> view_weights;  ///< normalized self-weights
  std::size_t iterations = 0;
};

/// Auto-Weighted Multiple Graph Learning (Nie, Li & Li, IJCAI 2016): the
/// parameter-free baseline minimizing Σ_v √Tr(Fᵀ L_v F) by alternating the
/// implicit self-weights w_v = 1/(2√Tr(Fᵀ L_v F)) with the embedding
/// eigenproblem, followed by K-means on the embedding.
StatusOr<AmglResult> Amgl(const MultiViewGraphs& graphs,
                          const AmglOptions& options);

}  // namespace umvsc::mvsc

#endif  // UMVSC_MVSC_AMGL_H_
