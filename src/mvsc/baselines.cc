#include "mvsc/baselines.h"

#include <cmath>

#include "cluster/ensemble.h"
#include "cluster/kmeans.h"
#include "cluster/spectral.h"
#include "la/ops.h"

namespace umvsc::mvsc {

namespace {

// Spectral clustering on one sparse affinity: Lanczos embedding of the
// normalized Laplacian, row normalization, K-means.
StatusOr<std::vector<std::size_t>> SparseSpectralLabels(
    const la::CsrMatrix& affinity, std::size_t c, std::size_t kmeans_restarts,
    std::uint64_t seed) {
  StatusOr<la::Matrix> embedding = cluster::SpectralEmbeddingSparse(
      affinity, c, /*normalize_rows=*/true, seed + 19);
  if (!embedding.ok()) return embedding.status();
  cluster::KMeansOptions km;
  km.num_clusters = c;
  km.restarts = kmeans_restarts;
  km.seed = seed;
  StatusOr<cluster::KMeansResult> clustered = cluster::KMeans(*embedding, km);
  if (!clustered.ok()) return clustered.status();
  return std::move(clustered->labels);
}

}  // namespace

StatusOr<std::vector<std::vector<std::size_t>>> PerViewSpectral(
    const MultiViewGraphs& graphs, const BaselineOptions& options) {
  if (graphs.NumViews() == 0) {
    return Status::InvalidArgument("PerViewSpectral requires at least one view");
  }
  std::vector<std::vector<std::size_t>> all_labels;
  all_labels.reserve(graphs.NumViews());
  for (std::size_t v = 0; v < graphs.NumViews(); ++v) {
    StatusOr<std::vector<std::size_t>> labels =
        SparseSpectralLabels(graphs.affinities[v], options.num_clusters,
                             options.kmeans_restarts, options.seed + 7 * v);
    if (!labels.ok()) return labels.status();
    all_labels.push_back(std::move(*labels));
  }
  return all_labels;
}

StatusOr<std::vector<std::size_t>> ConcatFeatureSC(
    const data::MultiViewDataset& dataset, const BaselineOptions& options) {
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  data::MultiViewDataset working = dataset;
  if (options.graph.standardize) working.StandardizeViews();
  la::Matrix stacked = la::HConcat(working.views);
  GraphOptions graph_options = options.graph;
  graph_options.standardize = false;  // already standardized per view
  StatusOr<MultiViewGraphs> graph = BuildSingleGraph(stacked, graph_options);
  if (!graph.ok()) return graph.status();
  return SparseSpectralLabels(graph->affinities.front(), options.num_clusters,
                              options.kmeans_restarts, options.seed);
}

StatusOr<std::vector<std::size_t>> KernelAdditionSC(
    const MultiViewGraphs& graphs, const BaselineOptions& options) {
  if (graphs.NumViews() == 0) {
    return Status::InvalidArgument("KernelAdditionSC requires at least one view");
  }
  std::vector<double> uniform(graphs.NumViews(),
                              1.0 / static_cast<double>(graphs.NumViews()));
  la::CsrMatrix average = la::WeightedSum(graphs.affinities, uniform);
  return SparseSpectralLabels(average, options.num_clusters,
                              options.kmeans_restarts, options.seed);
}

StatusOr<std::vector<std::size_t>> EnsembleSC(const MultiViewGraphs& graphs,
                                              const BaselineOptions& options) {
  StatusOr<std::vector<std::vector<std::size_t>>> per_view =
      PerViewSpectral(graphs, options);
  if (!per_view.ok()) return per_view.status();
  cluster::ConsensusOptions consensus;
  consensus.num_clusters = options.num_clusters;
  consensus.seed = options.seed + 101;
  consensus.kmeans_restarts = options.kmeans_restarts;
  return cluster::ConsensusClustering(*per_view, consensus);
}

StatusOr<std::vector<std::size_t>> ConcatKMeans(
    const data::MultiViewDataset& dataset, const BaselineOptions& options) {
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  data::MultiViewDataset working = dataset;
  working.StandardizeViews();
  la::Matrix stacked = la::HConcat(working.views);
  cluster::KMeansOptions km;
  km.num_clusters = options.num_clusters;
  km.restarts = options.kmeans_restarts;
  km.seed = options.seed;
  StatusOr<cluster::KMeansResult> clustered = cluster::KMeans(stacked, km);
  if (!clustered.ok()) return clustered.status();
  return std::move(clustered->labels);
}

}  // namespace umvsc::mvsc
