#ifndef UMVSC_MVSC_ANCHOR_ASSIGN_H_
#define UMVSC_MVSC_ANCHOR_ASSIGN_H_

#include <algorithm>
#include <cstddef>

#include "la/matrix.h"

// Shared arithmetic of anchor-model serving — the primitives BOTH the
// per-point path (OutOfSampleModel::Predict) and the batched path
// (serve::BatchAssigner::Assign) are built from, so the two produce
// bitwise-identical labels by construction rather than by luck:
//
//   distances   d²(x, a_j) = max(0, ‖x‖² + ‖a_j‖² − 2·x·a_j), the Gram
//               expansion of graph::CrossSquaredDistancePanel, with the dot
//               on the kc-blocked accumulation grid of la::kernel::GemmAdd
//               (BlockedDot below). A batched GemmAdd dot panel and a
//               per-point BlockedDot therefore agree bit for bit — and both
//               equal the training-side scalar dot whenever d ≤ kGemmKcBlock.
//   selection   SelectAnchorRow: the exact row rule of
//               graph::BuildAnchorAffinity (s nearest anchors, ties to the
//               smaller index, self-tuning bandwidth = own s-th-nearest
//               squared distance, Gaussian weights summed in rank order,
//               normalized, sorted to ascending anchor order).
//   coordinates ascending-column accumulation u = z·anchor_map — the
//               documented element order of CsrMatrix::MultiplyInto, so a
//               per-point loop equals the batched SpMM.
//   scores      BlockedVecMatAdd: scores += u·assignment on the same GemmAdd
//               kc grid, so a per-point vector-matrix product equals a row of
//               the batched la::MatMul.
//   argmax      RowArgMax: strict >, ties keep the smaller cluster index,
//               matching the training discretization.
//
// docs/SERVING.md spells out the full determinism contract.

namespace umvsc::mvsc::assign {

/// The kc block edge of la::kernel::GemmAdd's accumulation grid. Pinned
/// against the kernel by mvsc_anchor_assign_test (BlockedDot must equal a
/// 1×1 GemmAdd at every k); if the kernel's kc ever changes, that test and
/// this constant must move together.
inline constexpr std::size_t kGemmKcBlock = 256;

/// x·y accumulated on the GemmAdd element grid: serial ascending partial
/// per kc block, partials folded in ascending block order. Bitwise equal to
/// a zero-initialized GemmAdd element with inner dimension k, and to the
/// plain ascending dot when k ≤ kGemmKcBlock.
double BlockedDot(const double* x, const double* y, std::size_t k);

/// ‖x‖² in ascending-feature order — the graph::RowSquaredNorms convention.
double RowSquaredNorm(const double* x, std::size_t k);

/// The Gram-expansion squared distance, clamped at zero exactly as
/// graph::CrossSquaredDistancePanel clamps it.
inline double SquaredFromDot(double nx, double na, double dot) {
  return std::max(0.0, nx + na - 2.0 * dot);
}

/// graph::BuildAnchorAffinity's row rule applied to one dense distance row:
/// selects the s nearest of the m squared distances in `d2` (ascending
/// distance, ties keep the smaller anchor index), turns them into
/// normalized self-tuning Gaussian weights (bandwidth = the s-th-nearest
/// squared distance, floored at 1e-300; weights summed in rank order), and
/// writes them in ascending anchor order — ready to drop into a CSR row.
/// `cols` and `weights` must hold s entries. Requires 1 ≤ s ≤ m.
void SelectAnchorRow(const double* d2, std::size_t m, std::size_t s,
                     std::size_t* cols, double* weights);

/// out[j] += (u·a)[j] for a row vector u of a.rows() entries, accumulated
/// on the GemmAdd kc grid — bitwise equal to the corresponding row of
/// la::MatMul(U, a) for any inner dimension.
void BlockedVecMatAdd(const double* u, const la::Matrix& a, double* out);

/// Index of the row maximum; strict >, so ties keep the smaller index.
std::size_t RowArgMax(const double* scores, std::size_t c);

}  // namespace umvsc::mvsc::assign

#endif  // UMVSC_MVSC_ANCHOR_ASSIGN_H_
