#include "mvsc/graphs.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/parallel.h"
#include "common/strings.h"
#include "graph/connectivity.h"
#include "graph/distance.h"
#include "graph/kernels.h"
#include "graph/laplacian.h"

namespace umvsc::mvsc {

namespace {

// A kNN graph can fragment a cluster into several components; the
// normalized Laplacian then has extra zero eigenvalues and the spectral
// embedding picks arbitrary directions in the oversized null space. Bridge
// components with the shortest inter-component edge (scikit-learn's
// connectivity fix), using the weakest existing edge weight so the bridges
// never dominate the cut structure.
la::CsrMatrix EnsureConnected(la::CsrMatrix affinity,
                              const la::Matrix& features) {
  std::vector<std::size_t> component = graph::ConnectedComponents(affinity);
  std::size_t num_components = 0;
  for (std::size_t c : component) num_components = std::max(num_components, c + 1);
  if (num_components <= 1) return affinity;

  // Distances on demand — bridging is the rare path, and recomputing a few
  // rows beats holding an n × n matrix alive for the whole build. The
  // expression matches graph::SquaredDistancePanel bit for bit, so the
  // argmin scan picks the same bridge the dense implementation did.
  const la::Vector sq_norms = graph::RowSquaredNorms(features);
  const std::size_t dim = features.cols();
  const auto sq_dist = [&](std::size_t i, std::size_t j) {
    const double* ri = features.RowPtr(i);
    const double* rj = features.RowPtr(j);
    double s = 0.0;
    for (std::size_t p = 0; p < dim; ++p) s += ri[p] * rj[p];
    return std::max(0.0, sq_norms[i] + sq_norms[j] - 2.0 * s);
  };

  double min_weight = std::numeric_limits<double>::infinity();
  for (double v : affinity.values()) {
    if (v > 0.0) min_weight = std::min(min_weight, v);
  }
  if (!std::isfinite(min_weight)) min_weight = 1.0;

  std::vector<la::Triplet> extra;
  while (num_components > 1) {
    // Shortest edge leaving the component of vertex 0.
    const std::size_t root = component[0];
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < component.size(); ++i) {
      if (component[i] != root) continue;
      for (std::size_t j = 0; j < component.size(); ++j) {
        if (component[j] == root) continue;
        const double d = sq_dist(i, j);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    extra.push_back({bi, bj, min_weight});
    extra.push_back({bj, bi, min_weight});
    // Merge the absorbed component into root.
    const std::size_t absorbed = component[bj];
    for (std::size_t& c : component) {
      if (c == absorbed) c = root;
    }
    --num_components;
  }

  const auto& offsets = affinity.row_offsets();
  const auto& cols = affinity.col_indices();
  const auto& vals = affinity.values();
  for (std::size_t i = 0; i < affinity.rows(); ++i) {
    for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      extra.push_back({i, cols[k], vals[k]});
    }
  }
  return la::CsrMatrix::FromTriplets(affinity.rows(), affinity.cols(),
                                     std::move(extra));
}

StatusOr<la::CsrMatrix> BuildAffinity(const la::Matrix& features,
                                      const GraphOptions& options) {
  const std::size_t n = features.rows();
  if (n < 3) {
    return Status::InvalidArgument("graph construction needs >= 3 samples");
  }
  const std::size_t k =
      std::min<std::size_t>(options.knn, n >= 3 ? n - 2 : 1);
  // Feature-direct tiled builders: O(n·k) peak memory, byte-identical
  // graphs to the historical dense distance → kernel → sparsify pipeline.
  StatusOr<la::CsrMatrix> affinity =
      options.adaptive_neighbors
          ? graph::AdaptiveNeighborGraphFromFeatures(features, k)
          : graph::BuildKnnGraphFromFeatures(features, k,
                                             options.symmetrization);
  if (!affinity.ok()) return affinity.status();
  if (options.bridge_components) {
    return EnsureConnected(std::move(*affinity), features);
  }
  return affinity;
}

StatusOr<MultiViewGraphs> FromAffinities(std::vector<la::CsrMatrix> affinities) {
  MultiViewGraphs graphs;
  graphs.affinities = std::move(affinities);
  const std::size_t num_views = graphs.affinities.size();
  // Per-view Laplacians are independent: fan out across views, then
  // collect statuses in view order (first failure wins, as serially).
  std::vector<std::optional<StatusOr<la::CsrMatrix>>> laps(num_views);
  ParallelFor(0, num_views, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      laps[v].emplace(graph::Laplacian(graphs.affinities[v],
                                       graph::LaplacianKind::kSymmetric));
    }
  });
  graphs.laplacians.reserve(num_views);
  for (std::size_t v = 0; v < num_views; ++v) {
    if (!laps[v]->ok()) return laps[v]->status();
    graphs.laplacians.push_back(std::move(**laps[v]));
  }
  return graphs;
}

}  // namespace

StatusOr<MultiViewGraphs> BuildGraphs(const data::MultiViewDataset& dataset,
                                      const GraphOptions& options) {
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  data::MultiViewDataset working = dataset;
  if (options.standardize) working.StandardizeViews();

  // Per-view graph construction is embarrassingly parallel: each view's
  // distance/kernel/kNN pipeline runs independently. Inside a fan-out the
  // per-view kernels degrade to serial (nested-region rule), so total
  // parallelism stays bounded by the pool either way; with a single view
  // the inner row-parallel kernels take over instead.
  const std::size_t num_views = working.views.size();
  std::vector<std::optional<StatusOr<la::CsrMatrix>>> results(num_views);
  ParallelFor(0, num_views, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      results[v].emplace(BuildAffinity(working.views[v], options));
    }
  });
  std::vector<la::CsrMatrix> affinities;
  affinities.reserve(num_views);
  for (std::size_t v = 0; v < num_views; ++v) {
    if (!results[v]->ok()) return results[v]->status();
    affinities.push_back(std::move(**results[v]));
  }
  return FromAffinities(std::move(affinities));
}

la::CsrMatrix MassNormalizedCombination(
    const std::vector<la::CsrMatrix>& laplacians,
    const std::vector<double>& coefficients) {
  return MassNormalizedCombination(la::WeightedSum(laplacians, coefficients));
}

la::CsrMatrix MassNormalizedCombination(const la::CsrMatrix& combined) {
  const std::size_t n = combined.rows();
  la::Vector inv_sqrt_mass(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mass = combined.At(i, i);
    inv_sqrt_mass[i] = mass > 0.0 ? 1.0 / std::sqrt(mass) : 0.0;
  }
  // The input is valid CSR and the rescaling preserves its pattern, so the
  // result can adopt the arrays directly — no triplet buffer, no re-sort.
  const auto& cols = combined.col_indices();
  const auto& vals = combined.values();
  std::vector<double> scaled(vals.size());
  const auto& offsets = combined.row_offsets();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      scaled[k] = inv_sqrt_mass[i] * vals[k] * inv_sqrt_mass[cols[k]];
    }
  }
  return la::CsrMatrix::FromParts(n, combined.cols(), offsets, cols,
                                  std::move(scaled));
}

StatusOr<MultiViewGraphs> BuildGraphsIncomplete(
    const data::MultiViewDataset& dataset, const data::ViewPresence& presence,
    const GraphOptions& options) {
  UMVSC_RETURN_IF_ERROR(dataset.Validate());
  UMVSC_RETURN_IF_ERROR(presence.Validate(dataset));
  const std::size_t n = dataset.NumSamples();

  std::vector<la::CsrMatrix> affinities;
  std::vector<la::CsrMatrix> laplacians;
  for (std::size_t v = 0; v < dataset.NumViews(); ++v) {
    // Extract the observed rows of this view.
    std::vector<std::size_t> observed;
    for (std::size_t i = 0; i < n; ++i) {
      if (presence.present[v][i]) observed.push_back(i);
    }
    if (observed.size() < 3) {
      return Status::InvalidArgument(
          StrFormat("view %zu has fewer than 3 observed samples", v));
    }
    la::Matrix sub(observed.size(), dataset.views[v].cols());
    for (std::size_t r = 0; r < observed.size(); ++r) {
      sub.SetRow(r, dataset.views[v].Row(observed[r]));
    }
    // Standardize within the observed subset (absent rows are noise and
    // must not influence the statistics).
    if (options.standardize) {
      data::MultiViewDataset tmp;
      tmp.views.push_back(std::move(sub));
      tmp.StandardizeViews();
      sub = std::move(tmp.views.front());
    }
    GraphOptions sub_options = options;
    sub_options.standardize = false;
    StatusOr<la::CsrMatrix> sub_affinity = BuildAffinity(sub, sub_options);
    if (!sub_affinity.ok()) return sub_affinity.status();
    StatusOr<la::CsrMatrix> sub_lap =
        graph::Laplacian(*sub_affinity, graph::LaplacianKind::kSymmetric);
    if (!sub_lap.ok()) return sub_lap.status();

    // Lift both matrices to full size: absent samples are isolated vertices
    // with all-zero rows (no affinity, no Laplacian constraint).
    auto lift = [&](const la::CsrMatrix& m) {
      std::vector<la::Triplet> triplets;
      triplets.reserve(m.NumNonZeros());
      const auto& offsets = m.row_offsets();
      const auto& cols = m.col_indices();
      const auto& vals = m.values();
      for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
          triplets.push_back({observed[r], observed[cols[k]], vals[k]});
        }
      }
      return la::CsrMatrix::FromTriplets(n, n, std::move(triplets));
    };
    affinities.push_back(lift(*sub_affinity));
    laplacians.push_back(lift(*sub_lap));
  }
  MultiViewGraphs graphs;
  graphs.affinities = std::move(affinities);
  graphs.laplacians = std::move(laplacians);
  return graphs;
}

StatusOr<MultiViewGraphs> BuildSingleGraph(const la::Matrix& features,
                                           const GraphOptions& options) {
  la::Matrix working = features;
  if (options.standardize) {
    data::MultiViewDataset tmp;
    tmp.views.push_back(std::move(working));
    tmp.StandardizeViews();
    working = std::move(tmp.views.front());
  }
  StatusOr<la::CsrMatrix> w = BuildAffinity(working, options);
  if (!w.ok()) return w.status();
  std::vector<la::CsrMatrix> affinities;
  affinities.push_back(std::move(*w));
  return FromAffinities(std::move(affinities));
}

}  // namespace umvsc::mvsc
