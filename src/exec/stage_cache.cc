#include "exec/stage_cache.h"

#include <utility>

namespace umvsc::exec {

std::shared_ptr<const void> StageCache::GetOrCompute(
    const std::string& key,
    const std::function<std::shared_ptr<const void>()>& factory) {
  for (;;) {
    std::shared_ptr<Entry> entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        entry = it->second;
        ++hits_;
        entry->ready_cv.wait(
            lock, [&] { return entry->ready || entry->failed; });
        if (entry->ready) return entry->value;
        continue;  // the computing thread failed and evicted; retry fresh
      }
      entry = std::make_shared<Entry>();
      entries_.emplace(key, entry);
      ++misses_;
    }
    // First requester: compute outside the map lock so other keys proceed.
    std::shared_ptr<const void> value;
    try {
      value = factory();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      entry->failed = true;
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second == entry) entries_.erase(it);
      entry->ready_cv.notify_all();
      throw;
    }
    std::lock_guard<std::mutex> lock(mu_);
    entry->value = std::move(value);
    entry->ready = true;
    entry->ready_cv.notify_all();
    return entry->value;
  }
}

void StageCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // In-flight entries keep living through their requesters' shared_ptrs;
  // dropping the map reference only stops future retention.
  entries_.clear();
}

std::size_t StageCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t StageCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t StageCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace umvsc::exec
