#ifndef UMVSC_EXEC_BATCHER_H_
#define UMVSC_EXEC_BATCHER_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "la/batched.h"
#include "la/matrix.h"
#include "la/sym_eigen.h"

namespace umvsc::exec {

/// Cross-job rendezvous for small dense solves — the executor's concrete
/// la::SmallSolveBatcher. Jobs running on different workers hit their
/// R-step Procrustes (c × c) and basis eigensolves (p' × p') at roughly
/// the same cadence; instead of each paying its own dispatch, submitters
/// enqueue and the first becomes the LEADER: it drains the queue snapshot
/// through la::BatchedProcrustes / la::BatchedSymmetricEigen (one grain-1
/// fan-out over the whole batch — team-per-problem), marks the slots done,
/// and loops until the queue is dry. Non-leaders block until their slot
/// completes.
///
/// Determinism: each batched slot is computed by the EXACT serial kernel
/// on that slot's input alone (la/batched.h), so a result depends only on
/// the submitted matrix — never on batch composition, arrival order, or
/// which thread led. Bitwise identical to calling the serial kernel
/// directly, which is what la::SmallSolveBatcher requires.
///
/// With one worker (or one core) every batch has size 1 and this reduces
/// to a mutex-guarded serial call — correct, just without the win.
class CrossJobBatcher : public la::SmallSolveBatcher {
 public:
  StatusOr<la::Matrix> Procrustes(const la::Matrix& m) override;
  StatusOr<la::SymEigenResult> SymEigen(const la::Matrix& a,
                                        double symmetry_tol) override;

  struct Stats {
    std::size_t requests = 0;    ///< solves submitted
    std::size_t dispatches = 0;  ///< batched kernel launches
    std::size_t max_batch = 0;   ///< largest single dispatch
  };
  Stats stats() const;

 private:
  struct PendingProcrustes {
    const la::Matrix* input = nullptr;
    StatusOr<la::Matrix>* output = nullptr;
    bool done = false;
  };
  struct PendingEigen {
    const la::Matrix* input = nullptr;
    double symmetry_tol = 1e-8;
    StatusOr<la::SymEigenResult>* output = nullptr;
    bool done = false;
  };

  /// Leader election + drain loop shared by both entry points.
  void Rendezvous(std::unique_lock<std::mutex>& lock, const bool& done);
  void DrainLocked(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  bool leader_active_ = false;
  std::vector<PendingProcrustes*> procrustes_queue_;
  std::vector<PendingEigen*> eigen_queue_;
  Stats stats_;
};

}  // namespace umvsc::exec

#endif  // UMVSC_EXEC_BATCHER_H_
