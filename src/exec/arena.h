#ifndef UMVSC_EXEC_ARENA_H_
#define UMVSC_EXEC_ARENA_H_

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace umvsc::exec {

/// Bump allocator for per-job workspace. A worker owns one Arena for its
/// whole lifetime: each job allocates monotonically (pointer-bump, no
/// per-allocation bookkeeping), and Reset() between jobs rewinds the
/// cursors while RETAINING the blocks — so after the first few jobs of a
/// shape, a worker's steady state performs zero heap traffic for arena
/// allocations. This is the memory half of the executor's packing story:
/// N sequential jobs reuse one high-water footprint instead of N.
///
/// Allocations are never individually freed and must be trivially
/// destructible (enforced by New<T>). Not thread-safe — an Arena belongs
/// to exactly one worker; jobs running concurrently use different arenas.
class Arena {
 public:
  /// Blocks grow geometrically from `first_block_bytes` up to a cap, so a
  /// tiny job costs one small block and a large one settles in O(log)
  /// allocations.
  explicit Arena(std::size_t first_block_bytes = 1 << 16);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw bytes with the given alignment (power of two). Never returns
  /// null; growth is by appending blocks, so previously returned pointers
  /// stay valid until Reset().
  void* Allocate(std::size_t bytes, std::size_t align = alignof(double));

  /// Typed array of `count` default-initialized (NOT zeroed) elements.
  template <typename T>
  T* New(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is rewound, never destroyed");
    if (count == 0) return nullptr;
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds every block's cursor to empty. Blocks are retained (the
  /// scratch-reuse contract); call Release() to give the memory back.
  void Reset();

  /// Drops all blocks (the "no reuse" A/B leg of bench/multi_job).
  void Release();

  /// Bytes currently reserved across retained blocks.
  std::size_t reserved_bytes() const { return reserved_; }
  /// Largest total live allocation seen since construction (high-water
  /// across Resets) — what the steady-state footprint converges to.
  std::size_t high_water_bytes() const { return high_water_; }
  /// Lifetime bytes handed out (across Resets) — the traffic the retained
  /// blocks absorbed.
  std::size_t lifetime_bytes() const { return lifetime_; }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  Block& GrowFor(std::size_t bytes);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  ///< blocks_[active_] is the current bump target
  std::size_t next_block_bytes_;
  std::size_t reserved_ = 0;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
  std::size_t lifetime_ = 0;
};

}  // namespace umvsc::exec

#endif  // UMVSC_EXEC_ARENA_H_
