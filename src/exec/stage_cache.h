#ifndef UMVSC_EXEC_STAGE_CACHE_H_
#define UMVSC_EXEC_STAGE_CACHE_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace umvsc::exec {

/// Compute-once memoization of shared pipeline stages across jobs.
///
/// Tenant sweeps hammer the same prefixes: a fig2-shaped grid re-simulates
/// the same (dataset, seed) and rebuilds the same graphs for every
/// (β, γ) cell — 66–87% of per-job cost on the benchmark datasets. Jobs
/// that key those stages here compute each exactly once per executor;
/// later requesters (any worker, any submission order) share the
/// immutable result.
///
/// Determinism: the cached value for a key comes from whichever requester
/// arrived first, but factories must be pure functions of their key, and
/// every kernel underneath is bitwise deterministic across thread counts
/// (docs/THREADING.md) — so WHICH job computes a stage cannot change WHAT
/// is computed, and cached results equal the compute-it-yourself baseline
/// bit for bit.
///
/// Concurrency: the first requester of a key computes OUTSIDE the map
/// lock (other keys proceed in parallel); duplicate requesters of the
/// same key block on the entry until it is ready. A factory that throws
/// evicts its entry and rethrows to the one requester it failed — later
/// requesters retry fresh.
class StageCache {
 public:
  /// Returns the cached value for `key`, computing it via `factory` on
  /// first request. The value type is erased; use the typed wrapper below.
  std::shared_ptr<const void> GetOrCompute(
      const std::string& key,
      const std::function<std::shared_ptr<const void>()>& factory);

  /// Typed convenience: `cache.Get<MultiViewGraphs>(key, [&] { ... })`
  /// where the lambda returns std::shared_ptr<const T> (or something
  /// convertible).
  template <typename T, typename Factory>
  std::shared_ptr<const T> Get(const std::string& key, Factory&& factory) {
    return std::static_pointer_cast<const T>(GetOrCompute(
        key, [&factory]() -> std::shared_ptr<const void> {
          return std::forward<Factory>(factory)();
        }));
  }

  /// Drops every entry (entries currently being computed are unaffected —
  /// their requesters still receive the result; it just isn't retained).
  void Clear();

  std::size_t size() const;
  /// Requests served from an already-resident entry (includes waiters that
  /// blocked on an in-flight computation).
  std::size_t hits() const;
  /// Requests that ran the factory.
  std::size_t misses() const;

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    bool ready = false;
    bool failed = false;
    std::condition_variable ready_cv;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace umvsc::exec

#endif  // UMVSC_EXEC_STAGE_CACHE_H_
