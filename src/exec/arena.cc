#include "exec/arena.h"

#include <algorithm>

#include "common/check.h"

namespace umvsc::exec {

namespace {
// Growth cap: past this, additional blocks arrive at a constant size
// instead of doubling, bounding overshoot on the last block to 16 MiB.
constexpr std::size_t kMaxBlockBytes = std::size_t{16} << 20;

std::size_t AlignUp(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}
}  // namespace

Arena::Arena(std::size_t first_block_bytes)
    : next_block_bytes_(std::max<std::size_t>(first_block_bytes, 256)) {}

Arena::Block& Arena::GrowFor(std::size_t bytes) {
  // Later blocks may still have room when an oversized request skipped
  // ahead; scan forward before appending (Reset() rewinds active_ anyway,
  // so the scan is O(1) amortized).
  while (active_ + 1 < blocks_.size()) {
    ++active_;
    if (blocks_[active_].capacity - blocks_[active_].used >= bytes) {
      return blocks_[active_];
    }
  }
  const std::size_t capacity = std::max(bytes, next_block_bytes_);
  next_block_bytes_ = std::min(kMaxBlockBytes, next_block_bytes_ * 2);
  Block block;
  block.data = std::make_unique<unsigned char[]>(capacity);
  block.capacity = capacity;
  reserved_ += capacity;
  blocks_.push_back(std::move(block));
  active_ = blocks_.size() - 1;
  return blocks_.back();
}

void* Arena::Allocate(std::size_t bytes, std::size_t align) {
  UMVSC_CHECK(align != 0 && (align & (align - 1)) == 0,
              "arena alignment must be a power of two");
  bytes = std::max<std::size_t>(bytes, 1);
  Block* block = blocks_.empty() ? nullptr : &blocks_[active_];
  std::size_t offset = block == nullptr ? 0 : AlignUp(block->used, align);
  if (block == nullptr || offset + bytes > block->capacity) {
    // Worst case the fresh block's base is only malloc-aligned; pad the
    // request so AlignUp on offset 0 still fits.
    block = &GrowFor(bytes + align);
    offset = AlignUp(block->used, align);
  }
  void* out = block->data.get() + offset;
  out = reinterpret_cast<void*>(
      AlignUp(reinterpret_cast<std::size_t>(out), align));
  const std::size_t consumed =
      static_cast<std::size_t>(static_cast<unsigned char*>(out) -
                               block->data.get()) +
      bytes - block->used;
  block->used += consumed;
  live_ += bytes;
  lifetime_ += bytes;
  high_water_ = std::max(high_water_, live_);
  return out;
}

void Arena::Reset() {
  for (Block& block : blocks_) block.used = 0;
  active_ = 0;
  live_ = 0;
}

void Arena::Release() {
  blocks_.clear();
  active_ = 0;
  reserved_ = 0;
  live_ = 0;
}

}  // namespace umvsc::exec
