#include "exec/executor.h"

#include <exception>
#include <utility>

#include "common/parallel.h"

namespace umvsc::exec {

namespace {
// Worker identity for OnWorkerThread: which executor (if any) owns the
// current thread. Plain thread_local pointer — workers set it once at
// startup and never race.
thread_local const JobExecutor* tl_owning_executor = nullptr;
}  // namespace

struct JobHandle::State {
  enum class Phase { kPending, kRunning, kDone, kCancelled };

  std::mutex mu;
  std::condition_variable cv;
  Phase phase = Phase::kPending;
  Status status = Status::OK();
  std::function<Status(JobContext&)> work;
  std::size_t thread_budget = 1;
  bool background = false;
  std::string name;
  std::atomic<bool> cancel_requested{false};

  bool DoneLocked() const {
    return phase == Phase::kDone || phase == Phase::kCancelled;
  }
};

bool JobContext::cancel_requested() const {
  return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
}

std::size_t JobContext::thread_budget() const { return thread_budget_; }

void JobHandle::Wait() const {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->DoneLocked(); });
}

bool JobHandle::Done() const {
  if (state_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->DoneLocked();
}

Status JobHandle::Await() const {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("empty job handle");
  }
  Wait();
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->status;
}

bool JobHandle::Cancel() {
  if (state_ == nullptr) return false;
  state_->cancel_requested.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->phase == State::Phase::kPending) {
    // The worker that eventually pops this state skips it (phase check);
    // resolve the handle right here so waiters don't depend on a pop.
    state_->phase = State::Phase::kCancelled;
    state_->status = Status::FailedPrecondition("job cancelled before start");
    state_->cv.notify_all();
    return true;
  }
  return false;
}

JobExecutor::JobExecutor() : JobExecutor(Options()) {}

JobExecutor::JobExecutor(Options options) : options_(std::move(options)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  slots_.reserve(options_.num_workers);
  workers_.reserve(options_.num_workers);
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

JobExecutor::~JobExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Pending jobs are resolved as cancelled so their waiters unblock;
    // running jobs get the cooperative flag and are joined below.
    for (auto* queue : {&foreground_, &background_}) {
      for (const std::shared_ptr<JobHandle::State>& state : *queue) {
        std::lock_guard<std::mutex> job_lock(state->mu);
        if (state->phase == JobHandle::State::Phase::kPending) {
          state->phase = JobHandle::State::Phase::kCancelled;
          state->status =
              Status::FailedPrecondition("executor destroyed before start");
          state->cv.notify_all();
          --in_flight_;
        }
      }
      queue->clear();
    }
    work_cv_.notify_all();
    idle_cv_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
}

JobHandle JobExecutor::Submit(JobSpec spec) {
  auto state = std::make_shared<JobHandle::State>();
  state->work = std::move(spec.work);
  state->thread_budget = spec.thread_budget;
  state->background = spec.background;
  state->name = std::move(spec.name);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      std::lock_guard<std::mutex> job_lock(state->mu);
      state->phase = JobHandle::State::Phase::kCancelled;
      state->status = Status::FailedPrecondition("executor is shutting down");
      return JobHandle(std::move(state));
    }
    (spec.background ? background_ : foreground_).push_back(state);
    ++in_flight_;
  }
  work_cv_.notify_one();
  return JobHandle(std::move(state));
}

std::shared_ptr<JobHandle::State> JobExecutor::NextJobLocked() {
  while (!foreground_.empty() || !background_.empty()) {
    std::deque<std::shared_ptr<JobHandle::State>>& queue =
        foreground_.empty() ? background_ : foreground_;
    std::shared_ptr<JobHandle::State> state = std::move(queue.front());
    queue.pop_front();
    std::lock_guard<std::mutex> job_lock(state->mu);
    if (state->phase == JobHandle::State::Phase::kPending) {
      state->phase = JobHandle::State::Phase::kRunning;
      return state;
    }
    // Cancelled while queued: the canceller already resolved the handle.
    if (--in_flight_ == 0) idle_cv_.notify_all();
  }
  return nullptr;
}

void JobExecutor::WorkerLoop(std::size_t worker_index) {
  tl_owning_executor = this;
  WorkerSlot& slot = *slots_[worker_index];
  for (;;) {
    std::shared_ptr<JobHandle::State> state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stopping_ || !foreground_.empty() || !background_.empty();
      });
      state = NextJobLocked();
      if (state == nullptr) {
        if (stopping_) return;
        continue;
      }
    }

    if (!options_.reuse_worker_state) {
      // The "no arena" A/B leg: every job pays its allocations fresh.
      slot.arena.Release();
      slot.scratch = mvsc::SolveScratch();
    } else {
      slot.arena.Reset();
    }

    JobContext context;
    context.arena_ = &slot.arena;
    context.stages_ = &stages_;
    context.batcher_ = options_.batch_small_solves ? &batcher_ : nullptr;
    context.scratch_ = &slot.scratch;
    context.cancel_ = &state->cancel_requested;
    context.thread_budget_ = state->thread_budget;

    Status outcome = Status::OK();
    try {
      // Two-level scheduling: every nested ParallelFor inside the body
      // partitions over this job's budget, not the process default — and
      // the budget dies with this scope, so it cannot leak into the next
      // job or another tenant (the ScopedNumThreads global-state hazard).
      const ScopedParallelContext budget(
          ParallelContext{state->thread_budget});
      outcome = state->work(context);
    } catch (const std::exception& e) {
      outcome = Status::Internal(std::string("job threw: ") + e.what());
    } catch (...) {
      outcome = Status::Internal("job threw a non-exception object");
    }

    {
      std::lock_guard<std::mutex> job_lock(state->mu);
      state->phase = JobHandle::State::Phase::kDone;
      state->status = std::move(outcome);
      state->cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void JobExecutor::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

bool JobExecutor::OnWorkerThread() const { return tl_owning_executor == this; }

}  // namespace umvsc::exec
