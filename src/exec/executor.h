#ifndef UMVSC_EXEC_EXECUTOR_H_
#define UMVSC_EXEC_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "exec/arena.h"
#include "exec/batcher.h"
#include "exec/stage_cache.h"
#include "mvsc/solve_hooks.h"

namespace umvsc::exec {

class JobExecutor;

/// Per-job view of the executor's substrate, handed to the job's work
/// function. Everything here belongs to the WORKER running the job (arena,
/// scratch) or to the executor as a whole (stage cache, batcher); nothing
/// may escape the work function.
class JobContext {
 public:
  /// Bump workspace, rewound between the jobs a worker runs.
  Arena& arena() { return *arena_; }
  /// Compute-once cache of shared pipeline stages (executor-wide).
  StageCache& stages() { return *stages_; }
  /// Cross-job small-solve rendezvous; null when batching is disabled.
  la::SmallSolveBatcher* batcher() { return batcher_; }
  /// The solver hook bundle for mvsc::UnifiedOptions::hooks — the worker's
  /// scratch plus the executor's batcher (or nulls when disabled).
  mvsc::SolveHooks hooks() { return {batcher_, scratch_}; }
  /// Cooperative preemption: background jobs should poll this at
  /// checkpoint boundaries and return early (Status::OK with partial
  /// effects rolled back, or an error) when set.
  bool cancel_requested() const;
  /// The thread budget this job declared (what its nested ParallelFor
  /// calls will be partitioned over).
  std::size_t thread_budget() const;

 private:
  friend class JobExecutor;
  JobContext() = default;
  Arena* arena_ = nullptr;
  StageCache* stages_ = nullptr;
  la::SmallSolveBatcher* batcher_ = nullptr;
  mvsc::SolveScratch* scratch_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;
  std::size_t thread_budget_ = 1;
};

/// One unit of submitted work.
struct JobSpec {
  /// The job body. Runs on an executor worker with a ScopedParallelContext
  /// installing `thread_budget`, so every nested ParallelFor inside (GEMM
  /// row blocks, per-view fan-outs) partitions over the budget instead of
  /// the process default. Exceptions are caught and surfaced as the job's
  /// status — they never poison sibling jobs or the worker.
  std::function<Status(JobContext&)> work;
  /// Threads this job's nested parallel regions may use (level 2 of the
  /// two-level schedule; the worker itself is level 1). 0 = process
  /// default. The repo's determinism contract makes results identical at
  /// every value; the budget only bounds this job's CPU claim.
  std::size_t thread_budget = 1;
  /// Background jobs run only when no foreground job is queued — the
  /// stream re-solve lane. They should poll JobContext::cancel_requested.
  bool background = false;
  /// Display/debug name (job status messages).
  std::string name;
};

/// Shared-state handle to a submitted job. Copyable; all copies observe
/// the same job.
class JobHandle {
 public:
  JobHandle() = default;

  /// Blocks until the job completes or is cancelled while pending.
  void Wait() const;
  /// True once the job finished, failed, or was cancelled.
  bool Done() const;
  /// The job's outcome: the work function's return, Internal for an
  /// escaped exception, or "cancelled" when cancelled while pending.
  /// Blocks via Wait().
  Status Await() const;
  /// Requests cancellation. A PENDING job is removed from the queue and
  /// completes with a cancelled status (returns true). A RUNNING job gets
  /// its cancel flag set — cooperative, the body decides (returns false).
  /// Already-done jobs: no-op, returns false.
  bool Cancel();

  bool valid() const { return state_ != nullptr; }

 private:
  friend class JobExecutor;
  struct State;
  explicit JobHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// Deterministic multi-tenant job executor: packs many independent solves
/// onto one substrate — the global thread pool for nested parallelism
/// (level 2), plus per-worker arenas/scratch, an executor-wide stage
/// cache, and a cross-job small-solve batcher.
///
/// Determinism contract (pinned by exec_executor_test and the
/// bench/multi_job parity gate): per-job outputs are bitwise identical to
/// running the same work functions in a plain serial loop, at every
/// worker count and under every submission order. The pieces: job bodies
/// depend only on their inputs; nested kernels are thread-count-invariant
/// (docs/THREADING.md); cache factories are pure (StageCache); batched
/// slots run the exact serial kernels (CrossJobBatcher). Scheduling
/// decides only WHEN work happens, never WHAT it computes.
class JobExecutor {
 public:
  struct Options {
    /// Concurrent jobs (level 1). Distinct from any job's thread budget.
    std::size_t num_workers = 1;
    /// Retain each worker's arena blocks and scratch shapes across the
    /// jobs it runs (the steady-state zero-allocation path). Off = every
    /// job starts from released state — the A/B leg bench/multi_job
    /// reports as "no arena".
    bool reuse_worker_state = true;
    /// Route hooked small solves through the cross-job rendezvous
    /// (CrossJobBatcher). Off = jobs get a null batcher and call serial
    /// kernels directly.
    bool batch_small_solves = true;
  };

  JobExecutor();  // default Options
  explicit JobExecutor(Options options);
  /// Cancels all pending jobs, flags running ones, and joins the workers.
  ~JobExecutor();

  JobExecutor(const JobExecutor&) = delete;
  JobExecutor& operator=(const JobExecutor&) = delete;

  /// Enqueues a job. Foreground jobs run FIFO ahead of background ones.
  JobHandle Submit(JobSpec spec);

  /// Blocks until every job submitted so far has completed.
  void WaitAll();

  /// True when called from one of THIS executor's worker threads. Callers
  /// that might run inside a job use this to avoid submit-and-wait
  /// deadlock (run inline instead) — see stream::StreamingOptions.
  bool OnWorkerThread() const;

  /// Executor-wide compute-once stage cache.
  StageCache& stages() { return stages_; }
  /// Batching statistics (zeroes when batch_small_solves is off).
  CrossJobBatcher::Stats batcher_stats() const { return batcher_.stats(); }

  const Options& options() const { return options_; }

 private:
  struct WorkerSlot {
    Arena arena;
    mvsc::SolveScratch scratch;
  };

  void WorkerLoop(std::size_t worker_index);
  std::shared_ptr<JobHandle::State> NextJobLocked();

  Options options_;
  StageCache stages_;
  CrossJobBatcher batcher_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers: queue or stop changed
  std::condition_variable idle_cv_;   ///< WaitAll: in-flight hit zero
  std::deque<std::shared_ptr<JobHandle::State>> foreground_;
  std::deque<std::shared_ptr<JobHandle::State>> background_;
  std::size_t in_flight_ = 0;  ///< queued + running
  bool stopping_ = false;

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> workers_;
};

}  // namespace umvsc::exec

#endif  // UMVSC_EXEC_EXECUTOR_H_
