#include "exec/batcher.h"

#include <algorithm>
#include <utility>

namespace umvsc::exec {

void CrossJobBatcher::DrainLocked(std::unique_lock<std::mutex>& lock) {
  while (!procrustes_queue_.empty() || !eigen_queue_.empty()) {
    std::vector<PendingProcrustes*> pro = std::move(procrustes_queue_);
    std::vector<PendingEigen*> eig = std::move(eigen_queue_);
    procrustes_queue_.clear();
    eigen_queue_.clear();
    ++stats_.dispatches;
    stats_.max_batch = std::max(stats_.max_batch, pro.size() + eig.size());
    lock.unlock();
    // The slots live on the submitters' stacks; they are parked on done_cv_
    // until we flip `done` below, so the pointers stay valid here.
    std::vector<la::ProcrustesProblem> pro_problems(pro.size());
    for (std::size_t i = 0; i < pro.size(); ++i) {
      pro_problems[i].input = pro[i]->input;
      pro_problems[i].output = pro[i]->output;
    }
    std::vector<la::SymEigenProblem> eig_problems(eig.size());
    for (std::size_t i = 0; i < eig.size(); ++i) {
      eig_problems[i].input = eig[i]->input;
      eig_problems[i].symmetry_tol = eig[i]->symmetry_tol;
      eig_problems[i].output = eig[i]->output;
    }
    la::BatchedProcrustes(pro_problems.data(), pro_problems.size());
    la::BatchedSymmetricEigen(eig_problems.data(), eig_problems.size());
    lock.lock();
    for (PendingProcrustes* p : pro) p->done = true;
    for (PendingEigen* e : eig) e->done = true;
    done_cv_.notify_all();
  }
}

void CrossJobBatcher::Rendezvous(std::unique_lock<std::mutex>& lock,
                                 const bool& done) {
  ++stats_.requests;
  if (!leader_active_) {
    leader_active_ = true;
    DrainLocked(lock);  // drains our own slot in the first snapshot
    leader_active_ = false;
  } else {
    done_cv_.wait(lock, [&] { return done; });
  }
}

StatusOr<la::Matrix> CrossJobBatcher::Procrustes(const la::Matrix& m) {
  StatusOr<la::Matrix> result = Status::Internal("batched slot not filled");
  PendingProcrustes node;
  node.input = &m;
  node.output = &result;
  std::unique_lock<std::mutex> lock(mu_);
  procrustes_queue_.push_back(&node);
  Rendezvous(lock, node.done);
  return result;
}

StatusOr<la::SymEigenResult> CrossJobBatcher::SymEigen(const la::Matrix& a,
                                                       double symmetry_tol) {
  StatusOr<la::SymEigenResult> result =
      Status::Internal("batched slot not filled");
  PendingEigen node;
  node.input = &a;
  node.symmetry_tol = symmetry_tol;
  node.output = &result;
  std::unique_lock<std::mutex> lock(mu_);
  eigen_queue_.push_back(&node);
  Rendezvous(lock, node.done);
  return result;
}

CrossJobBatcher::Stats CrossJobBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace umvsc::exec
