#ifndef UMVSC_SERVE_REGISTRY_H_
#define UMVSC_SERVE_REGISTRY_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "mvsc/out_of_sample.h"

namespace umvsc::serve {

/// Shared-ownership handle to a loaded, immutable model. Queries hold one
/// of these for the duration of a request: no copy, no reload, and a model
/// swapped out of the registry mid-request stays alive until the last
/// in-flight handle drops.
using ModelHandle = std::shared_ptr<const mvsc::OutOfSampleModel>;

/// Warm in-memory model registry: model-id → loaded model. The serving
/// front door — models are loaded (from disk or a finished fit) once,
/// then every query resolves its id to a handle under a single mutex
/// acquisition; the heavy state is behind the shared_ptr, so Get is O(1)
/// and never touches model bytes.
///
/// Thread safety: all methods are safe to call concurrently. Replacing an
/// id is atomic — concurrent Gets see either the old or the new model,
/// never a mix — and old handles keep the old model alive (the warm-swap
/// upgrade path: load the new file, then swap the id).
class ModelRegistry {
 public:
  /// Loads a model file (serve::ModelSerializer format) and installs it
  /// under `id`, replacing any previous model with that id.
  Status LoadFromFile(const std::string& id, const std::string& path);

  /// Installs an already-fitted model under `id` (replacing any previous).
  void Insert(const std::string& id, mvsc::OutOfSampleModel model);

  /// Resolves an id to a handle; kNotFound when absent.
  StatusOr<ModelHandle> Get(const std::string& id) const;

  /// Removes `id`. Returns whether it was present. Outstanding handles
  /// remain valid.
  bool Remove(const std::string& id);

  /// Registered ids, sorted (for stable listings).
  std::vector<std::string> Ids() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, ModelHandle> models_;
};

}  // namespace umvsc::serve

#endif  // UMVSC_SERVE_REGISTRY_H_
