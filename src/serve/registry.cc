#include "serve/registry.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "serve/model_io.h"

namespace umvsc::serve {

Status ModelRegistry::LoadFromFile(const std::string& id,
                                   const std::string& path) {
  StatusOr<mvsc::OutOfSampleModel> model = ModelSerializer::Load(path);
  if (!model.ok()) return model.status();
  ModelHandle handle =
      std::make_shared<const mvsc::OutOfSampleModel>(*std::move(model));
  std::lock_guard<std::mutex> lock(mu_);
  models_[id] = std::move(handle);
  return Status::OK();
}

void ModelRegistry::Insert(const std::string& id,
                           mvsc::OutOfSampleModel model) {
  ModelHandle handle =
      std::make_shared<const mvsc::OutOfSampleModel>(std::move(model));
  std::lock_guard<std::mutex> lock(mu_);
  models_[id] = std::move(handle);
}

StatusOr<ModelHandle> ModelRegistry::Get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(id);
  if (it == models_.end()) {
    return Status::NotFound(
        StrFormat("no model registered under id \"%s\"", id.c_str()));
  }
  return it->second;
}

bool ModelRegistry::Remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.erase(id) > 0;
}

std::vector<std::string> ModelRegistry::Ids() const {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(models_.size());
    for (const auto& [id, handle] : models_) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

}  // namespace umvsc::serve
