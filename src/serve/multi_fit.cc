#include "serve/multi_fit.h"

#include <utility>

#include "mvsc/anchor_unified.h"

namespace umvsc::serve {

namespace {

Status FitOneTenant(const TenantFitSpec& spec, exec::JobContext& context,
                    ModelRegistry* registry) {
  if (spec.training == nullptr) {
    return Status::InvalidArgument("tenant spec has no training dataset");
  }
  mvsc::UnifiedOptions options = spec.unified;
  options.hooks = context.hooks();

  StatusOr<mvsc::OutOfSampleModel> model =
      Status::Internal("tenant fit did not run");
  if (options.anchors.enabled) {
    // Large-scale path: the anchor solve yields the serving model directly
    // (assignment touches anchors only, never the training rows).
    StatusOr<mvsc::AnchorUnifiedResult> solved = mvsc::SolveUnifiedAnchors(
        *spec.training, options, spec.graph_options.standardize);
    if (!solved.ok()) return solved.status();
    model = mvsc::OutOfSampleModel::FitAnchor(std::move(solved->model));
  } else {
    const mvsc::UnifiedMVSC solver(options);
    StatusOr<mvsc::UnifiedResult> solved =
        solver.Run(*spec.training, spec.graph_options);
    if (!solved.ok()) return solved.status();
    model = mvsc::OutOfSampleModel::Fit(*spec.training, solved->labels,
                                        solved->view_weights,
                                        spec.out_of_sample);
  }
  if (!model.ok()) return model.status();
  if (registry != nullptr) {
    registry->Insert(spec.model_id, std::move(*model));
  }
  return Status::OK();
}

}  // namespace

std::vector<TenantFitReport> FitTenantModels(
    exec::JobExecutor& executor, const std::vector<TenantFitSpec>& specs,
    ModelRegistry* registry) {
  std::vector<exec::JobHandle> handles;
  handles.reserve(specs.size());
  for (const TenantFitSpec& spec : specs) {
    exec::JobSpec job;
    job.name = "fit:" + spec.model_id;
    job.thread_budget = spec.thread_budget;
    // The spec vector outlives the blocking Await loop below, so the jobs
    // may hold references into it.
    job.work = [&spec, registry](exec::JobContext& context) {
      return FitOneTenant(spec, context, registry);
    };
    handles.push_back(executor.Submit(std::move(job)));
  }
  std::vector<TenantFitReport> reports(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    reports[i].model_id = specs[i].model_id;
    reports[i].status = handles[i].Await();
  }
  return reports;
}

}  // namespace umvsc::serve
