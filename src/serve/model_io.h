#ifndef UMVSC_SERVE_MODEL_IO_H_
#define UMVSC_SERVE_MODEL_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "mvsc/out_of_sample.h"

namespace umvsc::serve {

/// Versioned binary persistence for fitted OutOfSampleModel instances —
/// both kinds: anchor models (anchors, anchor_map, mix, assignment,
/// standardization parameters; the compact serveable artifact of
/// SolveUnifiedAnchors) and exact-path models (standardized training
/// views, train scales, labels, view weights α). Graphs are never
/// persisted — nothing serve-time needs them.
///
/// Format (all integers little-endian, doubles as little-endian IEEE-754
/// bit patterns; see docs/SERVING.md for the full layout):
///
///   magic "UMVSCMDL" · u32 version · u32 kind (1 anchor, 2 exact)
///   then a fixed sequence of sections, each
///   u32 tag · u64 payload_len · payload · u32 crc32(payload)
///
/// Load/Deserialize reject — with a clean Status, never UB — truncated
/// files and trailing garbage (kIoError), per-section CRC mismatches
/// (kIoError), files written by a future format version
/// (kFailedPrecondition), and structurally inconsistent payloads
/// (kInvalidArgument). Every count is bounds-checked against the remaining
/// bytes before any allocation, so a corrupt length field cannot trigger
/// an over-allocation.
///
/// Round-trip contract: a loaded model predicts bitwise identically to the
/// model that was saved (serve_model_io_test pins this).
class ModelSerializer {
 public:
  /// Current (and only) format version. Readers accept files with
  /// version <= kFormatVersion; writers always emit kFormatVersion.
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Serializes to an in-memory byte string (the Save payload).
  static std::string Serialize(const mvsc::OutOfSampleModel& model);

  /// Parses a byte string produced by Serialize.
  static StatusOr<mvsc::OutOfSampleModel> Deserialize(std::string_view bytes);

  /// Writes the serialized model to `path` (via a same-directory temporary
  /// and an atomic rename, so readers never observe a half-written file).
  static Status Save(const mvsc::OutOfSampleModel& model,
                     const std::string& path);

  /// Reads and parses a model file written by Save.
  static StatusOr<mvsc::OutOfSampleModel> Load(const std::string& path);

 private:
  /// Field-level (de)serialization of exact-path models (model_io.cc). A
  /// nested member so it shares ModelSerializer's OutOfSampleModel
  /// friendship.
  struct ExactCodec;
};

}  // namespace umvsc::serve

#endif  // UMVSC_SERVE_MODEL_IO_H_
