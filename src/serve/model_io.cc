#include "serve/model_io.h"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/strings.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace umvsc::serve {

namespace {

constexpr char kMagic[8] = {'U', 'M', 'V', 'S', 'C', 'M', 'D', 'L'};
constexpr std::uint32_t kKindAnchor = 1;
constexpr std::uint32_t kKindExact = 2;

// Section tags, in the fixed order every file carries them:
// one meta, then one view section per view, then one model section.
constexpr std::uint32_t kTagMeta = 1;
constexpr std::uint32_t kTagView = 2;
constexpr std::uint32_t kTagModel = 3;

// ---------------------------------------------------------------------------
// Little-endian writers.
// ---------------------------------------------------------------------------

void PutU32(std::string* out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(b, 4);
}

void PutU64(std::string* out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(b, 8);
}

void PutDoubles(std::string* out, const double* p, std::size_t count) {
  if constexpr (std::endian::native == std::endian::little) {
    out->append(reinterpret_cast<const char*>(p), count * sizeof(double));
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      PutU64(out, std::bit_cast<std::uint64_t>(p[i]));
    }
  }
}

void PutVector(std::string* out, const la::Vector& v) {
  PutU64(out, v.size());
  PutDoubles(out, v.data(), v.size());
}

void PutMatrix(std::string* out, const la::Matrix& m) {
  PutU64(out, m.rows());
  PutU64(out, m.cols());
  PutDoubles(out, m.data(), m.rows() * m.cols());
}

void AppendSection(std::string* out, std::uint32_t tag,
                   const std::string& payload) {
  PutU32(out, tag);
  PutU64(out, payload.size());
  out->append(payload);
  PutU32(out, Crc32(payload.data(), payload.size()));
}

// ---------------------------------------------------------------------------
// Bounds-checked little-endian reader. Every Read* returns false instead of
// reading past the end; element counts are checked against the remaining
// bytes BEFORE any allocation, so corrupt length fields cannot trigger an
// over-allocation.
// ---------------------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }

  bool ReadBytes(void* dst, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool ReadU32(std::uint32_t* v) {
    unsigned char b[4];
    if (!ReadBytes(b, 4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= std::uint32_t{b[i]} << (8 * i);
    return true;
  }

  bool ReadU64(std::uint64_t* v) {
    unsigned char b[8];
    if (!ReadBytes(b, 8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= std::uint64_t{b[i]} << (8 * i);
    return true;
  }

  bool ReadDoubles(double* dst, std::size_t count) {
    if constexpr (std::endian::native == std::endian::little) {
      return ReadBytes(dst, count * sizeof(double));
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t bits;
        if (!ReadU64(&bits)) return false;
        dst[i] = std::bit_cast<double>(bits);
      }
      return true;
    }
  }

  bool ReadVector(la::Vector* v) {
    std::uint64_t n;
    if (!ReadU64(&n)) return false;
    if (n > remaining() / sizeof(double)) return false;
    *v = la::Vector(static_cast<std::size_t>(n));
    return ReadDoubles(v->data(), v->size());
  }

  bool ReadMatrix(la::Matrix* m) {
    std::uint64_t rows, cols;
    if (!ReadU64(&rows) || !ReadU64(&cols)) return false;
    const std::uint64_t budget = remaining() / sizeof(double);
    if (rows != 0 && cols > budget / rows) return false;
    *m = la::Matrix(static_cast<std::size_t>(rows),
                    static_cast<std::size_t>(cols));
    return ReadDoubles(m->data(), m->rows() * m->cols());
  }

  /// Advances over `n` bytes and returns them as a view into the buffer.
  bool ReadView(std::size_t n, std::string_view* view) {
    if (remaining() < n) return false;
    *view = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

Status Truncated() { return Status::IoError("model file is truncated"); }

/// Reads one `tag` section and hands back its CRC-verified payload.
Status ReadSection(Reader& r, std::uint32_t tag, std::string_view* payload) {
  std::uint32_t got_tag;
  std::uint64_t len;
  if (!r.ReadU32(&got_tag) || !r.ReadU64(&len)) return Truncated();
  if (got_tag != tag) {
    return Status::IoError(
        StrFormat("model file section tag %u where %u was expected", got_tag,
                  tag));
  }
  if (len > r.remaining()) return Truncated();
  if (!r.ReadView(static_cast<std::size_t>(len), payload)) return Truncated();
  std::uint32_t crc;
  if (!r.ReadU32(&crc)) return Truncated();
  if (crc != Crc32(payload->data(), payload->size())) {
    return Status::IoError("model file section failed its CRC32 check");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Per-kind payloads.
// ---------------------------------------------------------------------------

std::string SerializeAnchor(const mvsc::AnchorModel& model) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, ModelSerializer::kFormatVersion);
  PutU32(&out, kKindAnchor);
  {
    std::string meta;
    PutU64(&meta, model.anchor_neighbors);
    PutU64(&meta, model.num_clusters);
    PutU64(&meta, model.views.size());
    AppendSection(&out, kTagMeta, meta);
  }
  for (const mvsc::AnchorViewModel& view : model.views) {
    std::string payload;
    PutVector(&payload, view.feature_means);
    PutVector(&payload, view.feature_inv_stds);
    PutMatrix(&payload, view.anchors);
    PutMatrix(&payload, view.anchor_map);
    AppendSection(&out, kTagView, payload);
  }
  {
    std::string payload;
    PutMatrix(&payload, model.mix);
    PutMatrix(&payload, model.assignment);
    AppendSection(&out, kTagModel, payload);
  }
  return out;
}

StatusOr<mvsc::OutOfSampleModel> DeserializeAnchor(Reader& r) {
  mvsc::AnchorModel model;
  std::string_view payload;
  UMVSC_RETURN_IF_ERROR(ReadSection(r, kTagMeta, &payload));
  std::uint64_t neighbors, clusters, num_views;
  {
    Reader meta(payload);
    if (!meta.ReadU64(&neighbors) || !meta.ReadU64(&clusters) ||
        !meta.ReadU64(&num_views)) {
      return Truncated();
    }
  }
  model.anchor_neighbors = static_cast<std::size_t>(neighbors);
  model.num_clusters = static_cast<std::size_t>(clusters);
  for (std::uint64_t v = 0; v < num_views; ++v) {
    UMVSC_RETURN_IF_ERROR(ReadSection(r, kTagView, &payload));
    Reader vr(payload);
    mvsc::AnchorViewModel view;
    if (!vr.ReadVector(&view.feature_means) ||
        !vr.ReadVector(&view.feature_inv_stds) ||
        !vr.ReadMatrix(&view.anchors) || !vr.ReadMatrix(&view.anchor_map)) {
      return Truncated();
    }
    model.views.push_back(std::move(view));
  }
  UMVSC_RETURN_IF_ERROR(ReadSection(r, kTagModel, &payload));
  {
    Reader mr(payload);
    if (!mr.ReadMatrix(&model.mix) || !mr.ReadMatrix(&model.assignment)) {
      return Truncated();
    }
  }
  if (r.remaining() != 0) {
    return Status::IoError("model file has trailing bytes");
  }
  // FitAnchor re-runs the full structural validation and rebuilds the
  // derived anchor norms, so a loaded model is exactly a fitted one.
  return mvsc::OutOfSampleModel::FitAnchor(std::move(model));
}

}  // namespace

struct ModelSerializer::ExactCodec {
  static std::string Serialize(const mvsc::OutOfSampleModel& model);
  static StatusOr<mvsc::OutOfSampleModel> Deserialize(Reader& r);
};

std::string ModelSerializer::ExactCodec::Serialize(
    const mvsc::OutOfSampleModel& model) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, ModelSerializer::kFormatVersion);
  PutU32(&out, kKindExact);
  {
    std::string meta;
    PutU64(&meta, model.options_.knn);
    PutU64(&meta, model.num_clusters_);
    PutU64(&meta, model.views_.size());
    AppendSection(&out, kTagMeta, meta);
  }
  for (std::size_t v = 0; v < model.views_.size(); ++v) {
    std::string payload;
    PutVector(&payload, model.feature_means_[v]);
    PutVector(&payload, model.feature_inv_stds_[v]);
    PutVector(&payload, model.train_scales_[v]);
    PutMatrix(&payload, model.views_[v]);
    AppendSection(&out, kTagView, payload);
  }
  {
    std::string payload;
    PutU64(&payload, model.labels_.size());
    for (std::size_t label : model.labels_) PutU64(&payload, label);
    PutU64(&payload, model.view_weights_.size());
    PutDoubles(&payload, model.view_weights_.data(),
               model.view_weights_.size());
    AppendSection(&out, kTagModel, payload);
  }
  return out;
}

StatusOr<mvsc::OutOfSampleModel> ModelSerializer::ExactCodec::Deserialize(
    Reader& r) {
  mvsc::OutOfSampleModel model;
  std::string_view payload;
  UMVSC_RETURN_IF_ERROR(ReadSection(r, kTagMeta, &payload));
  std::uint64_t knn, clusters, num_views;
  {
    Reader meta(payload);
    if (!meta.ReadU64(&knn) || !meta.ReadU64(&clusters) ||
        !meta.ReadU64(&num_views)) {
      return Truncated();
    }
  }
  model.options_.knn = static_cast<std::size_t>(knn);
  model.num_clusters_ = static_cast<std::size_t>(clusters);
  for (std::uint64_t v = 0; v < num_views; ++v) {
    UMVSC_RETURN_IF_ERROR(ReadSection(r, kTagView, &payload));
    Reader vr(payload);
    la::Vector means, inv_stds, scales;
    la::Matrix train;
    if (!vr.ReadVector(&means) || !vr.ReadVector(&inv_stds) ||
        !vr.ReadVector(&scales) || !vr.ReadMatrix(&train)) {
      return Truncated();
    }
    model.feature_means_.push_back(std::move(means));
    model.feature_inv_stds_.push_back(std::move(inv_stds));
    model.train_scales_.push_back(std::move(scales));
    model.views_.push_back(std::move(train));
  }
  UMVSC_RETURN_IF_ERROR(ReadSection(r, kTagModel, &payload));
  {
    Reader mr(payload);
    std::uint64_t num_labels;
    if (!mr.ReadU64(&num_labels)) return Truncated();
    if (num_labels > mr.remaining() / sizeof(std::uint64_t)) {
      return Truncated();
    }
    model.labels_.resize(static_cast<std::size_t>(num_labels));
    for (std::size_t i = 0; i < model.labels_.size(); ++i) {
      std::uint64_t label;
      if (!mr.ReadU64(&label)) return Truncated();
      model.labels_[i] = static_cast<std::size_t>(label);
    }
    std::uint64_t num_weights;
    if (!mr.ReadU64(&num_weights)) return Truncated();
    if (num_weights > mr.remaining() / sizeof(double)) return Truncated();
    model.view_weights_.resize(static_cast<std::size_t>(num_weights));
    if (!mr.ReadDoubles(model.view_weights_.data(),
                        model.view_weights_.size())) {
      return Truncated();
    }
  }
  if (r.remaining() != 0) {
    return Status::IoError("model file has trailing bytes");
  }

  // Structural validation — the invariants Fit establishes.
  const std::size_t v_count = model.views_.size();
  if (v_count == 0) {
    return Status::InvalidArgument("exact model has no views");
  }
  if (model.view_weights_.size() != v_count) {
    return Status::InvalidArgument(
        "exact model must carry one view weight per view");
  }
  const std::size_t n = model.views_.front().rows();
  if (n == 0 || model.labels_.size() != n) {
    return Status::InvalidArgument(
        "exact model labels must match the training row count");
  }
  if (model.num_clusters_ < 1) {
    return Status::InvalidArgument("exact model needs at least one cluster");
  }
  for (std::size_t label : model.labels_) {
    if (label >= model.num_clusters_) {
      return Status::InvalidArgument("exact model label out of range");
    }
  }
  if (model.options_.knn < 1 || model.options_.knn >= n) {
    return Status::InvalidArgument(
        "exact model knn must satisfy 1 <= k < n");
  }
  for (std::size_t v = 0; v < v_count; ++v) {
    const std::size_t d = model.views_[v].cols();
    if (model.views_[v].rows() != n || d == 0 ||
        model.feature_means_[v].size() != d ||
        model.feature_inv_stds_[v].size() != d ||
        model.train_scales_[v].size() != n) {
      return Status::InvalidArgument(
          StrFormat("exact model view %zu has inconsistent shapes", v));
    }
    if (model.view_weights_[v] < 0.0) {
      return Status::InvalidArgument(
          "exact model view weights must be nonnegative");
    }
  }
  return model;
}

std::string ModelSerializer::Serialize(const mvsc::OutOfSampleModel& model) {
  if (model.anchor_model()) return SerializeAnchor(*model.anchor_model());
  return ExactCodec::Serialize(model);
}

StatusOr<mvsc::OutOfSampleModel> ModelSerializer::Deserialize(
    std::string_view bytes) {
  Reader r(bytes);
  char magic[sizeof(kMagic)];
  if (!r.ReadBytes(magic, sizeof(kMagic))) return Truncated();
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not a umvsc model file (bad magic)");
  }
  std::uint32_t version, kind;
  if (!r.ReadU32(&version) || !r.ReadU32(&kind)) return Truncated();
  if (version > kFormatVersion) {
    return Status::FailedPrecondition(
        StrFormat("model file version %u is newer than the supported %u",
                  version, kFormatVersion));
  }
  if (kind == kKindAnchor) return DeserializeAnchor(r);
  if (kind == kKindExact) return ExactCodec::Deserialize(r);
  return Status::IoError(StrFormat("unknown model kind %u", kind));
}

Status ModelSerializer::Save(const mvsc::OutOfSampleModel& model,
                             const std::string& path) {
  const std::string bytes = Serialize(model);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s for writing", tmp.c_str()));
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("short write to %s", tmp.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("cannot rename %s into place", tmp.c_str()));
  }
  return Status::OK();
}

StatusOr<mvsc::OutOfSampleModel> ModelSerializer::Load(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(StrFormat("cannot open model file %s", path.c_str()));
  }
  std::string bytes;
  char buffer[1 << 16];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.append(buffer, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError(StrFormat("error reading model file %s", path.c_str()));
  }
  return Deserialize(bytes);
}

}  // namespace umvsc::serve
