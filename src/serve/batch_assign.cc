#include "serve/batch_assign.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "data/standardize.h"
#include "la/gemm_kernel.h"
#include "la/ops.h"
#include "la/sparse.h"
#include "mvsc/anchor_assign.h"

namespace umvsc::serve {
namespace {

using mvsc::AnchorModel;
using mvsc::AnchorViewModel;

constexpr std::size_t kDefaultTileRows = 64;

/// The per-view tile kernel: for batch rows [row_begin, row_end), fill the
/// rows' slots of the batch-level CSR arrays (`cols`/`vals` at i·s) with
/// the s-sparse anchor row of every point. Tiles write disjoint ranges, so
/// the ParallelFor over tiles is race-free and — because every arithmetic
/// step sits on the anchor_assign primitives — bitwise independent of the
/// tiling.
void AssignTile(const AnchorViewModel& view, const la::Vector& a_norms,
                const la::Matrix& batch_view, std::size_t s,
                std::size_t row_begin, std::size_t row_end,
                std::size_t* cols, double* vals) {
  const std::size_t d = view.anchors.cols();
  const std::size_t m = view.anchors.rows();
  const std::size_t rows = row_end - row_begin;
  // Per-thread scratch, reused across every tile this thread executes
  // (capacity sticks; resize is a no-op after the first tile).
  static thread_local std::vector<double> xs;
  static thread_local std::vector<double> dots;
  static thread_local std::vector<double> nx;
  xs.resize(rows * d);
  dots.resize(rows * m);
  nx.resize(rows);

  for (std::size_t i = 0; i < rows; ++i) {
    data::ApplyStandardizationRow(batch_view.RowPtr(row_begin + i), d,
                                  view.feature_means, view.feature_inv_stds,
                                  xs.data() + i * d);
    nx[i] = mvsc::assign::RowSquaredNorm(xs.data() + i * d, d);
  }
  // One packed-GEMM dot panel for the whole tile: dots(i, j) = x_i·a_j.
  // The anchors enter as a transposed operand (no materialized Aᵀ), and the
  // zero-initialized += panel reproduces BlockedDot bit for bit (the
  // GemmAdd kc-grid contract).
  std::fill(dots.begin(), dots.begin() + rows * m, 0.0);
  la::kernel::GemmAdd(m, d, {xs.data(), d, false},
                      {view.anchors.data(), d, true}, dots.data(), m, 0, rows);
  for (std::size_t i = 0; i < rows; ++i) {
    double* d2 = dots.data() + i * m;
    for (std::size_t j = 0; j < m; ++j) {
      d2[j] = mvsc::assign::SquaredFromDot(nx[i], a_norms[j], d2[j]);
    }
    mvsc::assign::SelectAnchorRow(d2, m, s, cols + (row_begin + i) * s,
                                  vals + (row_begin + i) * s);
  }
}

}  // namespace

BatchAssigner::BatchAssigner(ModelHandle model, AssignOptions options)
    : model_(std::move(model)), options_(options) {
  UMVSC_CHECK(model_ != nullptr, "BatchAssigner needs a model handle");
  if (options_.tile_rows == 0) options_.tile_rows = kDefaultTileRows;
}

StatusOr<std::vector<std::size_t>> BatchAssigner::Assign(
    const data::MultiViewDataset& batch) const {
  if (!model_->anchor_model()) {
    // Exact-path models have no batched kernel — serve them through the
    // per-point extension so one interface covers both kinds.
    return model_->Predict(batch);
  }
  UMVSC_RETURN_IF_ERROR(batch.Validate());
  const AnchorModel& model = *model_->anchor_model();
  if (batch.NumViews() != model.views.size()) {
    return Status::InvalidArgument(
        StrFormat("batch has %zu views, model expects %zu", batch.NumViews(),
                  model.views.size()));
  }
  for (std::size_t v = 0; v < model.views.size(); ++v) {
    if (batch.views[v].cols() != model.views[v].anchors.cols()) {
      return Status::InvalidArgument(
          StrFormat("view %zu has %zu features, model expects %zu", v,
                    batch.views[v].cols(), model.views[v].anchors.cols()));
    }
  }

  const std::size_t n = batch.NumSamples();
  std::vector<std::size_t> labels(n, 0);
  if (n == 0) return labels;
  const std::size_t s = model.anchor_neighbors;

  // Concatenated reduced coordinates U = [u_1 | … | u_V], n × p'.
  la::Matrix u(n, model.assignment.rows());
  std::size_t base = 0;
  for (std::size_t v = 0; v < model.views.size(); ++v) {
    const AnchorViewModel& view = model.views[v];
    const la::Vector& a_norms = model_->anchor_sq_norms()[v];
    const std::size_t m = view.anchors.rows();
    const std::size_t k = view.anchor_map.cols();

    // Fixed s-per-row sparsity: offsets are a closed form, and each tile
    // writes its own rows' column/value slots.
    std::vector<std::size_t> offsets(n + 1);
    for (std::size_t i = 0; i <= n; ++i) offsets[i] = i * s;
    std::vector<std::size_t> cols(n * s);
    std::vector<double> vals(n * s);
    ParallelFor(0, n, options_.tile_rows,
                [&](std::size_t begin, std::size_t end) {
                  AssignTile(view, a_norms, batch.views[v], s, begin, end,
                             cols.data(), vals.data());
                });
    la::CsrMatrix z = la::CsrMatrix::FromParts(
        n, m, std::move(offsets), std::move(cols), std::move(vals));

    // u_v = Z·anchor_map through the skinny SpMM, then into U's column
    // block. MultiplyInto accumulates each element's nonzeros in CSR
    // (ascending-anchor) order — the exact per-point loop order.
    la::Matrix u_v(n, k);
    z.MultiplyInto(view.anchor_map, u_v);
    ParallelFor(0, n, 1024, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        std::copy(u_v.RowPtr(i), u_v.RowPtr(i) + k, u.RowPtr(i) + base);
      }
    });
    base += k;
  }

  // scores = U·assignment in one packed GEMM (each row bitwise equal to the
  // per-point BlockedVecMatAdd), then the tie-to-smaller-index argmax.
  const la::Matrix scores = la::MatMul(u, model.assignment);
  ParallelFor(0, n, 1024, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      labels[i] =
          mvsc::assign::RowArgMax(scores.RowPtr(i), model.num_clusters);
    }
  });
  return labels;
}

}  // namespace umvsc::serve
