#ifndef UMVSC_SERVE_MULTI_FIT_H_
#define UMVSC_SERVE_MULTI_FIT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "exec/executor.h"
#include "mvsc/graphs.h"
#include "mvsc/out_of_sample.h"
#include "mvsc/unified.h"
#include "serve/registry.h"

namespace umvsc::serve {

/// One tenant's fit request: its training data, solver configuration, and
/// the registry id the resulting serving model installs under.
struct TenantFitSpec {
  std::string model_id;
  /// Non-owning; must outlive the FitTenantModels call.
  const data::MultiViewDataset* training = nullptr;
  /// Solver configuration. `hooks` is overwritten per job with the
  /// executor substrate (worker scratch + cross-job batcher); set the rest
  /// freely, including anchors.enabled for the large-scale path.
  mvsc::UnifiedOptions unified;
  /// Exact-path graph construction; the anchor path reads `standardize`.
  mvsc::GraphOptions graph_options;
  mvsc::OutOfSampleOptions out_of_sample;
  /// Level-2 thread budget of this tenant's job (0 = process default).
  std::size_t thread_budget = 1;
};

/// Per-tenant outcome of a multi-fit, in spec order.
struct TenantFitReport {
  std::string model_id;
  Status status = Status::OK();
};

/// Fits N tenant models concurrently on the executor — one job per spec,
/// all foreground — and installs each finished model in `registry` under
/// its spec's id (ModelRegistry::Insert is thread-safe; installation
/// happens on the worker as each fit lands, so early tenants serve while
/// late ones still solve). Blocks until every job finishes. A failed
/// tenant reports its status and installs nothing; siblings are unaffected
/// (executor exception/status isolation).
///
/// Determinism: each model equals the one a serial loop of the same fits
/// would produce, bitwise, at every worker count and spec order — the
/// executor contract (exec/executor.h).
std::vector<TenantFitReport> FitTenantModels(
    exec::JobExecutor& executor, const std::vector<TenantFitSpec>& specs,
    ModelRegistry* registry);

}  // namespace umvsc::serve

#endif  // UMVSC_SERVE_MULTI_FIT_H_
