#ifndef UMVSC_SERVE_BATCH_ASSIGN_H_
#define UMVSC_SERVE_BATCH_ASSIGN_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "serve/registry.h"

namespace umvsc::serve {

struct AssignOptions {
  /// Points per work tile of the batched anchor path. Each tile
  /// standardizes its rows, runs one packed-GEMM dot panel against every
  /// view's anchors, and writes its CSR rows — tiles touch disjoint output
  /// ranges, so any tile size (and any thread count) yields the same bits.
  /// 0 falls back to the default.
  std::size_t tile_rows = 64;
};

/// Batched out-of-sample assignment against a registry-held model — the
/// high-QPS serving kernel. One Assign call over a b-point batch replaces b
/// OutOfSampleModel::Predict calls:
///
///   per view, per tile: standardize rows → dot panel against the m anchors
///   through la::kernel::GemmAdd (packed SIMD GEMM; anchors as a transposed
///   operand, no materialized copy) → Gram-expansion distances →
///   SelectAnchorRow into the batch CSR arrays
///   per view: one skinny SpMM (CsrMatrix::MultiplyInto) maps the n × m
///   bipartite block through anchor_map into the reduced coordinates
///   finally: one n × p' × c MatMul scores every point, row-argmax labels
///
/// Every step runs on the shared primitives of mvsc/anchor_assign.h (see
/// the contract there), so labels are bitwise identical to the per-point
/// Predict path at every thread count and tile size — the batched path is
/// a reassociation-free re-tiling, not an approximation.
///
/// Exact-path (non-anchor) models have no batched kernel; Assign forwards
/// to Predict so callers can serve either kind through one interface.
///
/// Thread safety: Assign is const and touches only immutable model state —
/// safe to call concurrently on one BatchAssigner.
class BatchAssigner {
 public:
  /// `model` must be non-null (UMVSC_CHECK); typically ModelRegistry::Get.
  /// The assigner shares ownership, so the model outlives registry swaps.
  explicit BatchAssigner(ModelHandle model, AssignOptions options = {});

  /// Labels for every point of `batch`, in row order.
  StatusOr<std::vector<std::size_t>> Assign(
      const data::MultiViewDataset& batch) const;

  const ModelHandle& model() const { return model_; }

 private:
  ModelHandle model_;
  AssignOptions options_;
};

}  // namespace umvsc::serve

#endif  // UMVSC_SERVE_BATCH_ASSIGN_H_
