file(REMOVE_RECURSE
  "CMakeFiles/umvsc_data.dir/corruption.cc.o"
  "CMakeFiles/umvsc_data.dir/corruption.cc.o.d"
  "CMakeFiles/umvsc_data.dir/dataset.cc.o"
  "CMakeFiles/umvsc_data.dir/dataset.cc.o.d"
  "CMakeFiles/umvsc_data.dir/incomplete.cc.o"
  "CMakeFiles/umvsc_data.dir/incomplete.cc.o.d"
  "CMakeFiles/umvsc_data.dir/io.cc.o"
  "CMakeFiles/umvsc_data.dir/io.cc.o.d"
  "CMakeFiles/umvsc_data.dir/synthetic.cc.o"
  "CMakeFiles/umvsc_data.dir/synthetic.cc.o.d"
  "libumvsc_data.a"
  "libumvsc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umvsc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
