file(REMOVE_RECURSE
  "libumvsc_data.a"
)
