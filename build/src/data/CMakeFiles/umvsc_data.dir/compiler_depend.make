# Empty compiler generated dependencies file for umvsc_data.
# This may be replaced when dependencies are built.
