file(REMOVE_RECURSE
  "libumvsc_mvsc.a"
)
