file(REMOVE_RECURSE
  "CMakeFiles/umvsc_mvsc.dir/amgl.cc.o"
  "CMakeFiles/umvsc_mvsc.dir/amgl.cc.o.d"
  "CMakeFiles/umvsc_mvsc.dir/baselines.cc.o"
  "CMakeFiles/umvsc_mvsc.dir/baselines.cc.o.d"
  "CMakeFiles/umvsc_mvsc.dir/coreg.cc.o"
  "CMakeFiles/umvsc_mvsc.dir/coreg.cc.o.d"
  "CMakeFiles/umvsc_mvsc.dir/graphs.cc.o"
  "CMakeFiles/umvsc_mvsc.dir/graphs.cc.o.d"
  "CMakeFiles/umvsc_mvsc.dir/mlan.cc.o"
  "CMakeFiles/umvsc_mvsc.dir/mlan.cc.o.d"
  "CMakeFiles/umvsc_mvsc.dir/multi_nmf.cc.o"
  "CMakeFiles/umvsc_mvsc.dir/multi_nmf.cc.o.d"
  "CMakeFiles/umvsc_mvsc.dir/mvkkm.cc.o"
  "CMakeFiles/umvsc_mvsc.dir/mvkkm.cc.o.d"
  "CMakeFiles/umvsc_mvsc.dir/out_of_sample.cc.o"
  "CMakeFiles/umvsc_mvsc.dir/out_of_sample.cc.o.d"
  "CMakeFiles/umvsc_mvsc.dir/two_stage.cc.o"
  "CMakeFiles/umvsc_mvsc.dir/two_stage.cc.o.d"
  "CMakeFiles/umvsc_mvsc.dir/unified.cc.o"
  "CMakeFiles/umvsc_mvsc.dir/unified.cc.o.d"
  "libumvsc_mvsc.a"
  "libumvsc_mvsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umvsc_mvsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
