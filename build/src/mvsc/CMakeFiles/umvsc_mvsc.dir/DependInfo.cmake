
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mvsc/amgl.cc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/amgl.cc.o" "gcc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/amgl.cc.o.d"
  "/root/repo/src/mvsc/baselines.cc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/baselines.cc.o" "gcc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/baselines.cc.o.d"
  "/root/repo/src/mvsc/coreg.cc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/coreg.cc.o" "gcc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/coreg.cc.o.d"
  "/root/repo/src/mvsc/graphs.cc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/graphs.cc.o" "gcc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/graphs.cc.o.d"
  "/root/repo/src/mvsc/mlan.cc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/mlan.cc.o" "gcc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/mlan.cc.o.d"
  "/root/repo/src/mvsc/multi_nmf.cc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/multi_nmf.cc.o" "gcc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/multi_nmf.cc.o.d"
  "/root/repo/src/mvsc/mvkkm.cc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/mvkkm.cc.o" "gcc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/mvkkm.cc.o.d"
  "/root/repo/src/mvsc/out_of_sample.cc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/out_of_sample.cc.o" "gcc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/out_of_sample.cc.o.d"
  "/root/repo/src/mvsc/two_stage.cc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/two_stage.cc.o" "gcc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/two_stage.cc.o.d"
  "/root/repo/src/mvsc/unified.cc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/unified.cc.o" "gcc" "src/mvsc/CMakeFiles/umvsc_mvsc.dir/unified.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/umvsc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/umvsc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/umvsc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/umvsc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/umvsc_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/umvsc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
