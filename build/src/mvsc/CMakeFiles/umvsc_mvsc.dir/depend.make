# Empty dependencies file for umvsc_mvsc.
# This may be replaced when dependencies are built.
