file(REMOVE_RECURSE
  "CMakeFiles/umvsc_la.dir/cholesky.cc.o"
  "CMakeFiles/umvsc_la.dir/cholesky.cc.o.d"
  "CMakeFiles/umvsc_la.dir/jacobi_eigen.cc.o"
  "CMakeFiles/umvsc_la.dir/jacobi_eigen.cc.o.d"
  "CMakeFiles/umvsc_la.dir/lanczos.cc.o"
  "CMakeFiles/umvsc_la.dir/lanczos.cc.o.d"
  "CMakeFiles/umvsc_la.dir/lu.cc.o"
  "CMakeFiles/umvsc_la.dir/lu.cc.o.d"
  "CMakeFiles/umvsc_la.dir/matrix.cc.o"
  "CMakeFiles/umvsc_la.dir/matrix.cc.o.d"
  "CMakeFiles/umvsc_la.dir/nmf.cc.o"
  "CMakeFiles/umvsc_la.dir/nmf.cc.o.d"
  "CMakeFiles/umvsc_la.dir/ops.cc.o"
  "CMakeFiles/umvsc_la.dir/ops.cc.o.d"
  "CMakeFiles/umvsc_la.dir/qr.cc.o"
  "CMakeFiles/umvsc_la.dir/qr.cc.o.d"
  "CMakeFiles/umvsc_la.dir/simplex.cc.o"
  "CMakeFiles/umvsc_la.dir/simplex.cc.o.d"
  "CMakeFiles/umvsc_la.dir/sparse.cc.o"
  "CMakeFiles/umvsc_la.dir/sparse.cc.o.d"
  "CMakeFiles/umvsc_la.dir/svd.cc.o"
  "CMakeFiles/umvsc_la.dir/svd.cc.o.d"
  "CMakeFiles/umvsc_la.dir/sym_eigen.cc.o"
  "CMakeFiles/umvsc_la.dir/sym_eigen.cc.o.d"
  "CMakeFiles/umvsc_la.dir/vector.cc.o"
  "CMakeFiles/umvsc_la.dir/vector.cc.o.d"
  "libumvsc_la.a"
  "libumvsc_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umvsc_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
