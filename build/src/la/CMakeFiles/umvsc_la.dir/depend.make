# Empty dependencies file for umvsc_la.
# This may be replaced when dependencies are built.
