file(REMOVE_RECURSE
  "libumvsc_la.a"
)
