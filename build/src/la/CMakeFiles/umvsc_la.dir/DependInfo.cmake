
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/cholesky.cc" "src/la/CMakeFiles/umvsc_la.dir/cholesky.cc.o" "gcc" "src/la/CMakeFiles/umvsc_la.dir/cholesky.cc.o.d"
  "/root/repo/src/la/jacobi_eigen.cc" "src/la/CMakeFiles/umvsc_la.dir/jacobi_eigen.cc.o" "gcc" "src/la/CMakeFiles/umvsc_la.dir/jacobi_eigen.cc.o.d"
  "/root/repo/src/la/lanczos.cc" "src/la/CMakeFiles/umvsc_la.dir/lanczos.cc.o" "gcc" "src/la/CMakeFiles/umvsc_la.dir/lanczos.cc.o.d"
  "/root/repo/src/la/lu.cc" "src/la/CMakeFiles/umvsc_la.dir/lu.cc.o" "gcc" "src/la/CMakeFiles/umvsc_la.dir/lu.cc.o.d"
  "/root/repo/src/la/matrix.cc" "src/la/CMakeFiles/umvsc_la.dir/matrix.cc.o" "gcc" "src/la/CMakeFiles/umvsc_la.dir/matrix.cc.o.d"
  "/root/repo/src/la/nmf.cc" "src/la/CMakeFiles/umvsc_la.dir/nmf.cc.o" "gcc" "src/la/CMakeFiles/umvsc_la.dir/nmf.cc.o.d"
  "/root/repo/src/la/ops.cc" "src/la/CMakeFiles/umvsc_la.dir/ops.cc.o" "gcc" "src/la/CMakeFiles/umvsc_la.dir/ops.cc.o.d"
  "/root/repo/src/la/qr.cc" "src/la/CMakeFiles/umvsc_la.dir/qr.cc.o" "gcc" "src/la/CMakeFiles/umvsc_la.dir/qr.cc.o.d"
  "/root/repo/src/la/simplex.cc" "src/la/CMakeFiles/umvsc_la.dir/simplex.cc.o" "gcc" "src/la/CMakeFiles/umvsc_la.dir/simplex.cc.o.d"
  "/root/repo/src/la/sparse.cc" "src/la/CMakeFiles/umvsc_la.dir/sparse.cc.o" "gcc" "src/la/CMakeFiles/umvsc_la.dir/sparse.cc.o.d"
  "/root/repo/src/la/svd.cc" "src/la/CMakeFiles/umvsc_la.dir/svd.cc.o" "gcc" "src/la/CMakeFiles/umvsc_la.dir/svd.cc.o.d"
  "/root/repo/src/la/sym_eigen.cc" "src/la/CMakeFiles/umvsc_la.dir/sym_eigen.cc.o" "gcc" "src/la/CMakeFiles/umvsc_la.dir/sym_eigen.cc.o.d"
  "/root/repo/src/la/vector.cc" "src/la/CMakeFiles/umvsc_la.dir/vector.cc.o" "gcc" "src/la/CMakeFiles/umvsc_la.dir/vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/umvsc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
