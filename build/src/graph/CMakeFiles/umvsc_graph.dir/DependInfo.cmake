
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/connectivity.cc" "src/graph/CMakeFiles/umvsc_graph.dir/connectivity.cc.o" "gcc" "src/graph/CMakeFiles/umvsc_graph.dir/connectivity.cc.o.d"
  "/root/repo/src/graph/distance.cc" "src/graph/CMakeFiles/umvsc_graph.dir/distance.cc.o" "gcc" "src/graph/CMakeFiles/umvsc_graph.dir/distance.cc.o.d"
  "/root/repo/src/graph/kernels.cc" "src/graph/CMakeFiles/umvsc_graph.dir/kernels.cc.o" "gcc" "src/graph/CMakeFiles/umvsc_graph.dir/kernels.cc.o.d"
  "/root/repo/src/graph/knn_graph.cc" "src/graph/CMakeFiles/umvsc_graph.dir/knn_graph.cc.o" "gcc" "src/graph/CMakeFiles/umvsc_graph.dir/knn_graph.cc.o.d"
  "/root/repo/src/graph/laplacian.cc" "src/graph/CMakeFiles/umvsc_graph.dir/laplacian.cc.o" "gcc" "src/graph/CMakeFiles/umvsc_graph.dir/laplacian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/umvsc_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/umvsc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
