# Empty compiler generated dependencies file for umvsc_graph.
# This may be replaced when dependencies are built.
