file(REMOVE_RECURSE
  "libumvsc_graph.a"
)
