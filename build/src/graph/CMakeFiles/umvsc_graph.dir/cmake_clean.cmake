file(REMOVE_RECURSE
  "CMakeFiles/umvsc_graph.dir/connectivity.cc.o"
  "CMakeFiles/umvsc_graph.dir/connectivity.cc.o.d"
  "CMakeFiles/umvsc_graph.dir/distance.cc.o"
  "CMakeFiles/umvsc_graph.dir/distance.cc.o.d"
  "CMakeFiles/umvsc_graph.dir/kernels.cc.o"
  "CMakeFiles/umvsc_graph.dir/kernels.cc.o.d"
  "CMakeFiles/umvsc_graph.dir/knn_graph.cc.o"
  "CMakeFiles/umvsc_graph.dir/knn_graph.cc.o.d"
  "CMakeFiles/umvsc_graph.dir/laplacian.cc.o"
  "CMakeFiles/umvsc_graph.dir/laplacian.cc.o.d"
  "libumvsc_graph.a"
  "libumvsc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umvsc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
