# Empty compiler generated dependencies file for umvsc_cluster.
# This may be replaced when dependencies are built.
