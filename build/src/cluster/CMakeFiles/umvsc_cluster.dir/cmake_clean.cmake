file(REMOVE_RECURSE
  "CMakeFiles/umvsc_cluster.dir/ensemble.cc.o"
  "CMakeFiles/umvsc_cluster.dir/ensemble.cc.o.d"
  "CMakeFiles/umvsc_cluster.dir/gpi.cc.o"
  "CMakeFiles/umvsc_cluster.dir/gpi.cc.o.d"
  "CMakeFiles/umvsc_cluster.dir/kernel_kmeans.cc.o"
  "CMakeFiles/umvsc_cluster.dir/kernel_kmeans.cc.o.d"
  "CMakeFiles/umvsc_cluster.dir/kmeans.cc.o"
  "CMakeFiles/umvsc_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/umvsc_cluster.dir/nystrom.cc.o"
  "CMakeFiles/umvsc_cluster.dir/nystrom.cc.o.d"
  "CMakeFiles/umvsc_cluster.dir/rotation.cc.o"
  "CMakeFiles/umvsc_cluster.dir/rotation.cc.o.d"
  "CMakeFiles/umvsc_cluster.dir/spectral.cc.o"
  "CMakeFiles/umvsc_cluster.dir/spectral.cc.o.d"
  "libumvsc_cluster.a"
  "libumvsc_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umvsc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
