file(REMOVE_RECURSE
  "libumvsc_cluster.a"
)
