
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/ensemble.cc" "src/cluster/CMakeFiles/umvsc_cluster.dir/ensemble.cc.o" "gcc" "src/cluster/CMakeFiles/umvsc_cluster.dir/ensemble.cc.o.d"
  "/root/repo/src/cluster/gpi.cc" "src/cluster/CMakeFiles/umvsc_cluster.dir/gpi.cc.o" "gcc" "src/cluster/CMakeFiles/umvsc_cluster.dir/gpi.cc.o.d"
  "/root/repo/src/cluster/kernel_kmeans.cc" "src/cluster/CMakeFiles/umvsc_cluster.dir/kernel_kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/umvsc_cluster.dir/kernel_kmeans.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/cluster/CMakeFiles/umvsc_cluster.dir/kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/umvsc_cluster.dir/kmeans.cc.o.d"
  "/root/repo/src/cluster/nystrom.cc" "src/cluster/CMakeFiles/umvsc_cluster.dir/nystrom.cc.o" "gcc" "src/cluster/CMakeFiles/umvsc_cluster.dir/nystrom.cc.o.d"
  "/root/repo/src/cluster/rotation.cc" "src/cluster/CMakeFiles/umvsc_cluster.dir/rotation.cc.o" "gcc" "src/cluster/CMakeFiles/umvsc_cluster.dir/rotation.cc.o.d"
  "/root/repo/src/cluster/spectral.cc" "src/cluster/CMakeFiles/umvsc_cluster.dir/spectral.cc.o" "gcc" "src/cluster/CMakeFiles/umvsc_cluster.dir/spectral.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/umvsc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/umvsc_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/umvsc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
