file(REMOVE_RECURSE
  "CMakeFiles/umvsc_common.dir/rng.cc.o"
  "CMakeFiles/umvsc_common.dir/rng.cc.o.d"
  "CMakeFiles/umvsc_common.dir/status.cc.o"
  "CMakeFiles/umvsc_common.dir/status.cc.o.d"
  "CMakeFiles/umvsc_common.dir/strings.cc.o"
  "CMakeFiles/umvsc_common.dir/strings.cc.o.d"
  "libumvsc_common.a"
  "libumvsc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umvsc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
