# Empty dependencies file for umvsc_common.
# This may be replaced when dependencies are built.
