file(REMOVE_RECURSE
  "libumvsc_common.a"
)
