file(REMOVE_RECURSE
  "libumvsc_eval.a"
)
