file(REMOVE_RECURSE
  "CMakeFiles/umvsc_eval.dir/hungarian.cc.o"
  "CMakeFiles/umvsc_eval.dir/hungarian.cc.o.d"
  "CMakeFiles/umvsc_eval.dir/internal_metrics.cc.o"
  "CMakeFiles/umvsc_eval.dir/internal_metrics.cc.o.d"
  "CMakeFiles/umvsc_eval.dir/metrics.cc.o"
  "CMakeFiles/umvsc_eval.dir/metrics.cc.o.d"
  "libumvsc_eval.a"
  "libumvsc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umvsc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
