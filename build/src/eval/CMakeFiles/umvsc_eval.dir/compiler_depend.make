# Empty compiler generated dependencies file for umvsc_eval.
# This may be replaced when dependencies are built.
