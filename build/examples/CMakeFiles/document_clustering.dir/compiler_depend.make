# Empty compiler generated dependencies file for document_clustering.
# This may be replaced when dependencies are built.
