# Empty compiler generated dependencies file for image_collections.
# This may be replaced when dependencies are built.
