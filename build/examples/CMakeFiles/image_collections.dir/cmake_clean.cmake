file(REMOVE_RECURSE
  "CMakeFiles/image_collections.dir/image_collections.cpp.o"
  "CMakeFiles/image_collections.dir/image_collections.cpp.o.d"
  "image_collections"
  "image_collections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_collections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
