file(REMOVE_RECURSE
  "CMakeFiles/streaming_assignment.dir/streaming_assignment.cpp.o"
  "CMakeFiles/streaming_assignment.dir/streaming_assignment.cpp.o.d"
  "streaming_assignment"
  "streaming_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
