# Empty compiler generated dependencies file for streaming_assignment.
# This may be replaced when dependencies are built.
