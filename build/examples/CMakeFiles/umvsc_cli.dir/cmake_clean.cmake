file(REMOVE_RECURSE
  "CMakeFiles/umvsc_cli.dir/umvsc_cli.cpp.o"
  "CMakeFiles/umvsc_cli.dir/umvsc_cli.cpp.o.d"
  "umvsc_cli"
  "umvsc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umvsc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
