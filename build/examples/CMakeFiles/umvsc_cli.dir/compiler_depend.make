# Empty compiler generated dependencies file for umvsc_cli.
# This may be replaced when dependencies are built.
