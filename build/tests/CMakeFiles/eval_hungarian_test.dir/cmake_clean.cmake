file(REMOVE_RECURSE
  "CMakeFiles/eval_hungarian_test.dir/eval_hungarian_test.cc.o"
  "CMakeFiles/eval_hungarian_test.dir/eval_hungarian_test.cc.o.d"
  "eval_hungarian_test"
  "eval_hungarian_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_hungarian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
