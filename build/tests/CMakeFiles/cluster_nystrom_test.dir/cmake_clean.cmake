file(REMOVE_RECURSE
  "CMakeFiles/cluster_nystrom_test.dir/cluster_nystrom_test.cc.o"
  "CMakeFiles/cluster_nystrom_test.dir/cluster_nystrom_test.cc.o.d"
  "cluster_nystrom_test"
  "cluster_nystrom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_nystrom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
