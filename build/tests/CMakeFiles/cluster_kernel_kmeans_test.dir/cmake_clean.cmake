file(REMOVE_RECURSE
  "CMakeFiles/cluster_kernel_kmeans_test.dir/cluster_kernel_kmeans_test.cc.o"
  "CMakeFiles/cluster_kernel_kmeans_test.dir/cluster_kernel_kmeans_test.cc.o.d"
  "cluster_kernel_kmeans_test"
  "cluster_kernel_kmeans_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_kernel_kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
