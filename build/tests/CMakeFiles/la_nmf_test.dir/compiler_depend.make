# Empty compiler generated dependencies file for la_nmf_test.
# This may be replaced when dependencies are built.
