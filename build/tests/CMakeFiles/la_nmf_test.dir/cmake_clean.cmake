file(REMOVE_RECURSE
  "CMakeFiles/la_nmf_test.dir/la_nmf_test.cc.o"
  "CMakeFiles/la_nmf_test.dir/la_nmf_test.cc.o.d"
  "la_nmf_test"
  "la_nmf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_nmf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
