
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/la_nmf_test.cc" "tests/CMakeFiles/la_nmf_test.dir/la_nmf_test.cc.o" "gcc" "tests/CMakeFiles/la_nmf_test.dir/la_nmf_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mvsc/CMakeFiles/umvsc_mvsc.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/umvsc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/umvsc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/umvsc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/umvsc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/umvsc_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/umvsc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
