# Empty dependencies file for mvsc_baselines_test.
# This may be replaced when dependencies are built.
