file(REMOVE_RECURSE
  "CMakeFiles/mvsc_baselines_test.dir/mvsc_baselines_test.cc.o"
  "CMakeFiles/mvsc_baselines_test.dir/mvsc_baselines_test.cc.o.d"
  "mvsc_baselines_test"
  "mvsc_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvsc_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
