# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mvsc_baselines_test.
