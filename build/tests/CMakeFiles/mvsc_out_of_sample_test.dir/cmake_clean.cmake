file(REMOVE_RECURSE
  "CMakeFiles/mvsc_out_of_sample_test.dir/mvsc_out_of_sample_test.cc.o"
  "CMakeFiles/mvsc_out_of_sample_test.dir/mvsc_out_of_sample_test.cc.o.d"
  "mvsc_out_of_sample_test"
  "mvsc_out_of_sample_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvsc_out_of_sample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
