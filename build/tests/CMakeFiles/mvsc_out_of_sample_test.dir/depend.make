# Empty dependencies file for mvsc_out_of_sample_test.
# This may be replaced when dependencies are built.
