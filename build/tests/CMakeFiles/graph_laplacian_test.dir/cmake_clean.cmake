file(REMOVE_RECURSE
  "CMakeFiles/graph_laplacian_test.dir/graph_laplacian_test.cc.o"
  "CMakeFiles/graph_laplacian_test.dir/graph_laplacian_test.cc.o.d"
  "graph_laplacian_test"
  "graph_laplacian_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_laplacian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
