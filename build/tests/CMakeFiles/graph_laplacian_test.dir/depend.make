# Empty dependencies file for graph_laplacian_test.
# This may be replaced when dependencies are built.
