# Empty dependencies file for mvsc_conditioning_test.
# This may be replaced when dependencies are built.
