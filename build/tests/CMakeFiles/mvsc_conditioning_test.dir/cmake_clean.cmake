file(REMOVE_RECURSE
  "CMakeFiles/mvsc_conditioning_test.dir/mvsc_conditioning_test.cc.o"
  "CMakeFiles/mvsc_conditioning_test.dir/mvsc_conditioning_test.cc.o.d"
  "mvsc_conditioning_test"
  "mvsc_conditioning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvsc_conditioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
