# Empty dependencies file for la_sparse_ops_test.
# This may be replaced when dependencies are built.
