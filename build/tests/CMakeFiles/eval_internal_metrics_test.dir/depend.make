# Empty dependencies file for eval_internal_metrics_test.
# This may be replaced when dependencies are built.
