# Empty dependencies file for graph_distance_test.
# This may be replaced when dependencies are built.
