file(REMOVE_RECURSE
  "CMakeFiles/graph_distance_test.dir/graph_distance_test.cc.o"
  "CMakeFiles/graph_distance_test.dir/graph_distance_test.cc.o.d"
  "graph_distance_test"
  "graph_distance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
