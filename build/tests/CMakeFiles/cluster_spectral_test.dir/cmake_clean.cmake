file(REMOVE_RECURSE
  "CMakeFiles/cluster_spectral_test.dir/cluster_spectral_test.cc.o"
  "CMakeFiles/cluster_spectral_test.dir/cluster_spectral_test.cc.o.d"
  "cluster_spectral_test"
  "cluster_spectral_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_spectral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
