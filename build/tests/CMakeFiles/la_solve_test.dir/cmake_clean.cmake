file(REMOVE_RECURSE
  "CMakeFiles/la_solve_test.dir/la_solve_test.cc.o"
  "CMakeFiles/la_solve_test.dir/la_solve_test.cc.o.d"
  "la_solve_test"
  "la_solve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_solve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
