# Empty compiler generated dependencies file for la_solve_test.
# This may be replaced when dependencies are built.
