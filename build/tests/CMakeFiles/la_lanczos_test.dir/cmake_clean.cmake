file(REMOVE_RECURSE
  "CMakeFiles/la_lanczos_test.dir/la_lanczos_test.cc.o"
  "CMakeFiles/la_lanczos_test.dir/la_lanczos_test.cc.o.d"
  "la_lanczos_test"
  "la_lanczos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_lanczos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
