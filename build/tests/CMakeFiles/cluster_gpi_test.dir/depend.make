# Empty dependencies file for cluster_gpi_test.
# This may be replaced when dependencies are built.
