file(REMOVE_RECURSE
  "CMakeFiles/cluster_gpi_test.dir/cluster_gpi_test.cc.o"
  "CMakeFiles/cluster_gpi_test.dir/cluster_gpi_test.cc.o.d"
  "cluster_gpi_test"
  "cluster_gpi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_gpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
