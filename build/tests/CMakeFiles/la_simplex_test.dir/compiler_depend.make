# Empty compiler generated dependencies file for la_simplex_test.
# This may be replaced when dependencies are built.
