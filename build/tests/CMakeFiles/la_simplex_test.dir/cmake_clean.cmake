file(REMOVE_RECURSE
  "CMakeFiles/la_simplex_test.dir/la_simplex_test.cc.o"
  "CMakeFiles/la_simplex_test.dir/la_simplex_test.cc.o.d"
  "la_simplex_test"
  "la_simplex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_simplex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
