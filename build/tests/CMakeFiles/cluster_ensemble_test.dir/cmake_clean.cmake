file(REMOVE_RECURSE
  "CMakeFiles/cluster_ensemble_test.dir/cluster_ensemble_test.cc.o"
  "CMakeFiles/cluster_ensemble_test.dir/cluster_ensemble_test.cc.o.d"
  "cluster_ensemble_test"
  "cluster_ensemble_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_ensemble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
