# Empty dependencies file for cluster_ensemble_test.
# This may be replaced when dependencies are built.
