file(REMOVE_RECURSE
  "CMakeFiles/la_qr_test.dir/la_qr_test.cc.o"
  "CMakeFiles/la_qr_test.dir/la_qr_test.cc.o.d"
  "la_qr_test"
  "la_qr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_qr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
