# Empty dependencies file for la_qr_test.
# This may be replaced when dependencies are built.
