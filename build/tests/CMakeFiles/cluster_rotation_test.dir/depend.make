# Empty dependencies file for cluster_rotation_test.
# This may be replaced when dependencies are built.
