file(REMOVE_RECURSE
  "CMakeFiles/cluster_rotation_test.dir/cluster_rotation_test.cc.o"
  "CMakeFiles/cluster_rotation_test.dir/cluster_rotation_test.cc.o.d"
  "cluster_rotation_test"
  "cluster_rotation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_rotation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
