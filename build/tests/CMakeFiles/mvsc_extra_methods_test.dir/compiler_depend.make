# Empty compiler generated dependencies file for mvsc_extra_methods_test.
# This may be replaced when dependencies are built.
