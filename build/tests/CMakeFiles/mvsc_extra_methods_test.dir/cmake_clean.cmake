file(REMOVE_RECURSE
  "CMakeFiles/mvsc_extra_methods_test.dir/mvsc_extra_methods_test.cc.o"
  "CMakeFiles/mvsc_extra_methods_test.dir/mvsc_extra_methods_test.cc.o.d"
  "mvsc_extra_methods_test"
  "mvsc_extra_methods_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvsc_extra_methods_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
