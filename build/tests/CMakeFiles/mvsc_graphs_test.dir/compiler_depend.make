# Empty compiler generated dependencies file for mvsc_graphs_test.
# This may be replaced when dependencies are built.
