file(REMOVE_RECURSE
  "CMakeFiles/mvsc_graphs_test.dir/mvsc_graphs_test.cc.o"
  "CMakeFiles/mvsc_graphs_test.dir/mvsc_graphs_test.cc.o.d"
  "mvsc_graphs_test"
  "mvsc_graphs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvsc_graphs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
