file(REMOVE_RECURSE
  "CMakeFiles/mvsc_unified_test.dir/mvsc_unified_test.cc.o"
  "CMakeFiles/mvsc_unified_test.dir/mvsc_unified_test.cc.o.d"
  "mvsc_unified_test"
  "mvsc_unified_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvsc_unified_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
