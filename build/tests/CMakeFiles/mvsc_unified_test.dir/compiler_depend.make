# Empty compiler generated dependencies file for mvsc_unified_test.
# This may be replaced when dependencies are built.
