# Empty dependencies file for la_svd_test.
# This may be replaced when dependencies are built.
