file(REMOVE_RECURSE
  "CMakeFiles/la_svd_test.dir/la_svd_test.cc.o"
  "CMakeFiles/la_svd_test.dir/la_svd_test.cc.o.d"
  "la_svd_test"
  "la_svd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_svd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
