file(REMOVE_RECURSE
  "CMakeFiles/la_eigen_test.dir/la_eigen_test.cc.o"
  "CMakeFiles/la_eigen_test.dir/la_eigen_test.cc.o.d"
  "la_eigen_test"
  "la_eigen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_eigen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
