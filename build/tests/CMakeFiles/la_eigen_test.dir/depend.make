# Empty dependencies file for la_eigen_test.
# This may be replaced when dependencies are built.
