file(REMOVE_RECURSE
  "CMakeFiles/la_ops_test.dir/la_ops_test.cc.o"
  "CMakeFiles/la_ops_test.dir/la_ops_test.cc.o.d"
  "la_ops_test"
  "la_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
