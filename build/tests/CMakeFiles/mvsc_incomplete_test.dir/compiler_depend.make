# Empty compiler generated dependencies file for mvsc_incomplete_test.
# This may be replaced when dependencies are built.
