file(REMOVE_RECURSE
  "CMakeFiles/mvsc_incomplete_test.dir/mvsc_incomplete_test.cc.o"
  "CMakeFiles/mvsc_incomplete_test.dir/mvsc_incomplete_test.cc.o.d"
  "mvsc_incomplete_test"
  "mvsc_incomplete_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvsc_incomplete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
