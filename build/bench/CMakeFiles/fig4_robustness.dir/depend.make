# Empty dependencies file for fig4_robustness.
# This may be replaced when dependencies are built.
