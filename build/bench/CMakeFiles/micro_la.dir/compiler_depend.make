# Empty compiler generated dependencies file for micro_la.
# This may be replaced when dependencies are built.
