file(REMOVE_RECURSE
  "CMakeFiles/micro_la.dir/micro_la.cc.o"
  "CMakeFiles/micro_la.dir/micro_la.cc.o.d"
  "micro_la"
  "micro_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
