file(REMOVE_RECURSE
  "CMakeFiles/umvsc_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/umvsc_bench_common.dir/bench_common.cc.o.d"
  "libumvsc_bench_common.a"
  "libumvsc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umvsc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
