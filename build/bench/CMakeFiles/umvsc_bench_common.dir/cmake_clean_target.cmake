file(REMOVE_RECURSE
  "libumvsc_bench_common.a"
)
