# Empty compiler generated dependencies file for umvsc_bench_common.
# This may be replaced when dependencies are built.
