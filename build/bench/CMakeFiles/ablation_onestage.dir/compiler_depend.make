# Empty compiler generated dependencies file for ablation_onestage.
# This may be replaced when dependencies are built.
