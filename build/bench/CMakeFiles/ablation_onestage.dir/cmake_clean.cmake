file(REMOVE_RECURSE
  "CMakeFiles/ablation_onestage.dir/ablation_onestage.cc.o"
  "CMakeFiles/ablation_onestage.dir/ablation_onestage.cc.o.d"
  "ablation_onestage"
  "ablation_onestage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_onestage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
