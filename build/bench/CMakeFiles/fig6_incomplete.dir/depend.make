# Empty dependencies file for fig6_incomplete.
# This may be replaced when dependencies are built.
