file(REMOVE_RECURSE
  "CMakeFiles/fig6_incomplete.dir/fig6_incomplete.cc.o"
  "CMakeFiles/fig6_incomplete.dir/fig6_incomplete.cc.o.d"
  "fig6_incomplete"
  "fig6_incomplete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_incomplete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
