# Empty compiler generated dependencies file for fig2_sensitivity.
# This may be replaced when dependencies are built.
