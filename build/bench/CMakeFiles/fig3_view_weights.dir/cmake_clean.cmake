file(REMOVE_RECURSE
  "CMakeFiles/fig3_view_weights.dir/fig3_view_weights.cc.o"
  "CMakeFiles/fig3_view_weights.dir/fig3_view_weights.cc.o.d"
  "fig3_view_weights"
  "fig3_view_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_view_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
