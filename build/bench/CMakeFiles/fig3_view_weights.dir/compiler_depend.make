# Empty compiler generated dependencies file for fig3_view_weights.
# This may be replaced when dependencies are built.
